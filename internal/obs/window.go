package obs

import (
	"sync"
	"time"
)

// Window is a sliding-window histogram for SLO reporting: observations
// land in fixed buckets like a Histogram, but old observations age out,
// so Quantile answers "p99 over the last minute" rather than "p99 since
// process start". The window is a ring of time-aligned slots; a slot is
// reset lazily when the ring wraps onto it, so Observe stays O(1) and
// allocation-free after construction. All methods are safe for
// concurrent use and on a nil receiver.
type Window struct {
	mu      sync.Mutex
	bounds  []float64
	slots   []windowSlot
	slotDur time.Duration
	now     func() time.Time
}

type windowSlot struct {
	epoch  int64 // slot index since the Unix epoch; 0 slots are dead
	counts []int64
	count  int64
	sum    float64
}

// NewWindow builds a sliding-window histogram covering roughly span,
// quantised into slots ring positions (more slots, smoother aging).
// Bounds follow the Histogram rules (nil selects LatencyBucketsMS,
// explicit bounds must be non-empty and strictly increasing). span and
// slots are clamped to sane minimums.
func NewWindow(bounds []float64, span time.Duration, slots int) *Window {
	if bounds == nil {
		bounds = LatencyBucketsMS
	} else if err := validateBounds(bounds); err != nil {
		panic("obs: window: " + err.Error())
	}
	if slots < 2 {
		slots = 2
	}
	if span < time.Duration(slots) {
		span = time.Minute
	}
	w := &Window{
		bounds:  bounds,
		slots:   make([]windowSlot, slots),
		slotDur: span / time.Duration(slots),
		now:     time.Now,
	}
	for i := range w.slots {
		w.slots[i].counts = make([]int64, len(bounds)+1)
	}
	return w
}

// slot returns the live ring slot for the current instant, resetting it
// if the ring has wrapped since it was last written. Callers hold w.mu.
func (w *Window) slot() *windowSlot {
	epoch := w.now().UnixNano() / int64(w.slotDur)
	s := &w.slots[int(epoch%int64(len(w.slots)))]
	if s.epoch != epoch {
		s.epoch = epoch
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.count, s.sum = 0, 0
	}
	return s
}

// Observe records one value into the current slot.
func (w *Window) Observe(v float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.slot()
	i := 0
	for i < len(w.bounds) && v > w.bounds[i] {
		i++
	}
	s.counts[i]++
	s.count++
	s.sum += v
}

// aggregate sums the slots still inside the window. Callers hold w.mu.
func (w *Window) aggregate() (counts []int64, count int64, sum float64) {
	oldest := w.now().UnixNano()/int64(w.slotDur) - int64(len(w.slots)) + 1
	counts = make([]int64, len(w.bounds)+1)
	for i := range w.slots {
		s := &w.slots[i]
		if s.epoch < oldest || s.epoch == 0 {
			continue
		}
		for j, c := range s.counts {
			counts[j] += c
		}
		count += s.count
		sum += s.sum
	}
	return counts, count, sum
}

// Quantile estimates the q-quantile (0 < q <= 1) of the windowed
// observations by linear interpolation inside the bucket the rank lands
// in, the same estimate histogram_quantile computes. An empty window
// returns 0; a rank in the overflow bucket returns the highest bound
// (the window cannot see past its last bucket).
func (w *Window) Quantile(q float64) float64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	counts, count, _ := w.aggregate()
	bounds := w.bounds
	w.mu.Unlock()
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	cum := int64(0)
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return bounds[len(bounds)-1]
}

// Totals returns the observation count and sum inside the window.
func (w *Window) Totals() (count int64, sum float64) {
	if w == nil {
		return 0, 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	_, count, sum = w.aggregate()
	return count, sum
}

// Snapshot renders the windowed distribution in the same immutable form
// as a cumulative histogram's snapshot.
func (w *Window) Snapshot() HistogramSnapshot {
	if w == nil {
		return HistogramSnapshot{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	counts, count, sum := w.aggregate()
	return HistogramSnapshot{
		Count:  count,
		Sum:    sum,
		Bounds: append([]float64(nil), w.bounds...),
		Counts: counts,
	}
}
