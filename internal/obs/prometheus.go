package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for a metrics
// snapshot. Series names canonicalised by Name decode back into real
// Prometheus labels; dots in base names become underscores. The output
// is fully deterministic — families sorted by name, series sorted by
// label suffix — so a scrape is diffable and the format is pinned by a
// golden test.

// WritePrometheus renders the snapshot in the Prometheus text format.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	type series struct {
		labels string // canonical `{k="v",...}` suffix, "" when unlabelled
		value  string
		hist   *HistogramSnapshot
	}
	families := map[string]*struct {
		kind   string
		series []series
	}{}
	add := func(name, kind string, val string, hist *HistogramSnapshot) {
		base, labels := SplitName(name)
		fam := promName(base)
		f := families[fam]
		if f == nil || f.kind != kind {
			// A base name shared across metric kinds would produce duplicate
			// family names; keep them apart with a kind suffix. Registries in
			// this codebase never do this, but a merged foreign snapshot could.
			if f != nil {
				fam = fam + "_" + kind
				f = families[fam]
			}
		}
		if f == nil {
			f = &struct {
				kind   string
				series []series
			}{kind: kind}
			families[fam] = f
		}
		f.series = append(f.series, series{labels: labelSuffix(labels), value: val, hist: hist})
	}
	for name, v := range s.Counters {
		add(name, "counter", strconv.FormatInt(v, 10), nil)
	}
	for name, v := range s.Gauges {
		add(name, "gauge", formatFloat(v), nil)
	}
	for name := range s.Histograms {
		h := s.Histograms[name]
		add(name, "histogram", "", &h)
	}

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, fam := range names {
		f := families[fam]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, f.kind); err != nil {
			return err
		}
		for _, sr := range f.series {
			if sr.hist == nil {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", fam, sr.labels, sr.value); err != nil {
					return err
				}
				continue
			}
			if err := writeHistogram(w, fam, sr.labels, sr.hist); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative buckets with
// `le` labels (the internal per-bucket counts convert to cumulative),
// then _sum and _count.
func writeHistogram(w io.Writer, fam, labels string, h *HistogramSnapshot) error {
	cum := int64(0)
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, bucketLabels(labels, formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, bucketLabels(labels, "+Inf"), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam, labels, formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, labels, h.Count)
	return err
}

// bucketLabels appends the `le` label to an existing label suffix.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// labelSuffix renders decoded labels back into a canonical suffix.
func labelSuffix(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promLabelKey(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promName maps a dotted registry name onto a valid Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*, with '.' and every other invalid rune
// becoming '_'.
func promName(base string) string {
	var b strings.Builder
	for i, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelKey maps a label key onto a valid Prometheus label name
// ('le' excepted — the histogram path owns that key).
func promLabelKey(k string) string {
	var b strings.Builder
	for i, r := range k {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, integral values without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
