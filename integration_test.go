package vs2

// Integration regression guards: end-to-end quality floors on each
// dataset. These are deliberately set well below the measured numbers
// (EXPERIMENTS.md) so they only trip on real regressions, not on noise.

import (
	"testing"

	"vs2/internal/eval"
)

func e2eF1(t *testing.T, ds string, n int) float64 {
	t.Helper()
	spec := eval.Specs()[ds]
	docs := spec.Generate(n, 1)
	p := NewPipeline(Config{Task: taskOf(ds)})
	var pr eval.PR
	for i, l := range docs {
		obs := eval.Observed(l, 1+int64(i))
		res := p.Extract(obs.Doc)
		pr.Add(eval.EndToEndPR(res.Entities, obs.Truth))
	}
	return pr.F1()
}

func taskOf(ds string) Task {
	switch ds {
	case "d1":
		return NISTTaxTask()
	case "d2":
		return EventPosterTask()
	default:
		return RealEstateTask()
	}
}

func TestEndToEndQualityFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("integration floor check")
	}
	floors := map[string]float64{
		"d1": 0.90, // measured ≈ 0.97
		"d2": 0.70, // measured ≈ 0.88
		"d3": 0.80, // measured ≈ 0.93
	}
	for ds, floor := range floors {
		if f1 := e2eF1(t, ds, 16); f1 < floor {
			t.Errorf("%s end-to-end F1 %.3f below regression floor %.2f", ds, f1, floor)
		}
	}
}

func TestSegmentationQualityFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("integration floor check")
	}
	floors := map[string]float64{
		"d1": 0.92, // measured ≈ 0.97
		"d2": 0.65, // measured ≈ 0.81
		"d3": 0.70, // measured ≈ 0.85
	}
	for ds, floor := range floors {
		spec := eval.Specs()[ds]
		docs := spec.Generate(16, 1)
		p := NewPipeline(Config{Task: taskOf(ds)})
		var pr eval.PR
		for i, l := range docs {
			obs := eval.Observed(l, 1+int64(i))
			pr.Add(eval.SegmentationPRDoc(obs.Doc, p.Segment(obs.Doc).Leaves(), obs.Truth))
		}
		if f1 := pr.F1(); f1 < floor {
			t.Errorf("%s segmentation F1 %.3f below regression floor %.2f", ds, f1, floor)
		}
	}
}

func TestVS2BeatsTextOnlyOverall(t *testing.T) {
	if testing.Short() {
		t.Skip("integration floor check")
	}
	// The paper's central claim, as a regression test: on the visually
	// rich corpora VS2 must beat the text-only pipeline end to end.
	for _, ds := range []string{"d2"} {
		spec := eval.Specs()[ds]
		docs := spec.Generate(16, 1)
		p := NewPipeline(Config{Task: taskOf(ds)})
		var vsPR, txtPR eval.PR
		for i, l := range docs {
			obs := eval.Observed(l, 1+int64(i))
			vsPR.Add(eval.EndToEndPR(p.Extract(obs.Doc).Entities, obs.Truth))
			txtPR.Add(eval.EndToEndPR(TextOnlyBaseline(taskOf(ds), obs.Doc), obs.Truth))
		}
		if vsPR.F1() <= txtPR.F1() {
			t.Errorf("%s: VS2 F1 %.3f does not beat text-only %.3f", ds, vsPR.F1(), txtPR.F1())
		}
	}
}
