// fidelity.go is the adaptive fidelity ladder of the serving layer: a
// cheap triage pre-pass (internal/triage) classifies each admitted
// document FULL / CHEAP / SKIP, and a load controller shifts the triage
// thresholds up under saturation and back down on recovery — trading
// fidelity for throughput *before* admission control has to shed work
// with ErrOverloaded. Every cheap-path routing is recorded in
// Result.Degraded (fallback "triage-cheap" / "triage-skip"), so a
// degraded answer is never silently passed off as a full-fidelity one.
//
// The ladder is opt-in: the zero FidelityPolicy (and Mode "off") leaves
// the server byte-identical to one without the subsystem, which is what
// the durability and determinism contracts of the journal/resume and
// vs2d≡vs2serve suites pin.
package vs2

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"vs2/internal/obs"
	"vs2/internal/serve"
	"vs2/internal/triage"
)

// PhaseTriage is the fidelity ladder's pre-pass stage: degradations
// carrying it mean the document was routed onto a cheaper path by
// choice (complexity triage under the current fidelity level), not
// because anything failed.
const PhaseTriage Phase = "triage"

// Fidelity modes.
const (
	// FidelityOff disables the ladder entirely; the empty string means
	// the same. The server behaves exactly as one without the subsystem.
	FidelityOff = "off"
	// FidelityPinned holds the fidelity level at FidelityPolicy.Pin. A
	// context-carried level (WithFidelity — the sharded front end's
	// envelope) still overrides per document.
	FidelityPinned = "pinned"
	// FidelityAdaptive runs the load controller: the level shifts up
	// under saturation and back down on recovery.
	FidelityAdaptive = "adaptive"
)

// FidelityPolicy tunes the serving layer's fidelity ladder. The zero
// value is off: no triage, no controller, bit-for-bit the pre-ladder
// behavior.
type FidelityPolicy struct {
	// Mode selects the ladder: FidelityOff (or ""), FidelityPinned or
	// FidelityAdaptive.
	Mode string
	// Levels is the deepest degradation rung; 0 selects 3.
	Levels int
	// Pin is the level a pinned-mode server holds (clamped to
	// [0, Levels]). Pin 0 enables triage at base thresholds only —
	// the mode the sharded workers run in, so the front end's envelope
	// level (WithFidelity) decides per document.
	Pin int
	// Triage is the level-0 complexity thresholds; the zero value
	// selects the triage package defaults.
	Triage triage.Policy
	// Interval is the adaptive controller's evaluation cadence; 0
	// selects 500ms.
	Interval time.Duration
	// HighLoad / LowLoad are the queue-occupancy watermarks (0 selects
	// 0.75 / 0.25); HighWaitMS / LowWaitMS the queue-wait p95 watermarks
	// (0 disables the wait signal). See triage.ControllerConfig.
	HighLoad, LowLoad     float64
	HighWaitMS, LowWaitMS float64
	// RaiseAfter / LowerAfter are the hysteresis streak lengths (0
	// selects 2 / 4); JitterHold bounds the seeded anti-flap hold after
	// a shift (0 selects 2, negative disables).
	RaiseAfter, LowerAfter int
	JitterHold             int
	// Seed drives the controller's jitter.
	Seed int64
}

// enabled reports whether the ladder does anything at all.
func (f FidelityPolicy) enabled() bool {
	return f.Mode == FidelityPinned || f.Mode == FidelityAdaptive
}

// levels resolves the Levels default.
func (f FidelityPolicy) levels() int {
	if f.Levels <= 0 {
		return 3
	}
	return f.Levels
}

type fidelityCtxKey struct{}

// WithFidelity returns a context carrying an explicit fidelity level
// for the documents extracted under it. On a server whose ladder is
// enabled (pinned or adaptive) the carried level overrides the server's
// own — this is how the sharded front end propagates one coherent
// level to every worker. A server with the ladder off ignores it.
func WithFidelity(ctx context.Context, level int) context.Context {
	if level < 0 {
		level = 0
	}
	return context.WithValue(ctx, fidelityCtxKey{}, level)
}

// FidelityFrom reports the context-carried fidelity level, if any.
func FidelityFrom(ctx context.Context) (int, bool) {
	lvl, ok := ctx.Value(fidelityCtxKey{}).(int)
	return lvl, ok
}

// triageDecision is the pre-pass verdict the serving layer attaches to
// the extraction context; ExtractContext routes on it and records the
// choice in Result.Degraded.
type triageDecision struct {
	class  triage.Class
	level  int
	score  triage.Score
	policy triage.Policy // thresholds as applied at level
}

// cause renders the deterministic one-line reason recorded in the
// Degradation (and therefore in journaled output lines — no clocks, no
// floats beyond fixed precision).
func (t triageDecision) cause() error {
	threshold, band := t.policy.CheapBelow, "cheap"
	if t.class == triage.Skip {
		threshold, band = t.policy.SkipBelow, "skip"
	}
	return fmt.Errorf("complexity %.3f below %s threshold %.3f at fidelity level %d",
		t.score.Complexity, band, threshold, t.level)
}

type triageCtxKey struct{}

func withTriageDecision(ctx context.Context, dec triageDecision) context.Context {
	return context.WithValue(ctx, triageCtxKey{}, dec)
}

func triageDecisionFrom(ctx context.Context) (triageDecision, bool) {
	dec, ok := ctx.Value(triageCtxKey{}).(triageDecision)
	return dec, ok
}

// startFidelity wires the server's fidelity subsystem per its policy;
// called once from NewServer, after the breakers exist (the adaptive
// controller watches them).
func (s *Server) startFidelity() {
	f := s.cfg.Fidelity
	if !f.enabled() {
		return
	}
	if f.Mode == FidelityAdaptive {
		// The controller's wait signal reads a short sliding window of
		// queue waits — saturation shows up here within seconds, and
		// recovery ages out just as fast.
		s.waitWin = obs.NewWindow(nil, 10*time.Second, 5)
		s.ctrl = triage.NewController(triage.ControllerConfig{
			Levels:     f.levels(),
			Interval:   f.Interval,
			HighLoad:   f.HighLoad,
			LowLoad:    f.LowLoad,
			HighWaitMS: f.HighWaitMS,
			LowWaitMS:  f.LowWaitMS,
			RaiseAfter: f.RaiseAfter,
			LowerAfter: f.LowerAfter,
			JitterHold: f.JitterHold,
			Seed:       f.Seed,
			Signals:    s.fidelitySignals,
			OnShift:    s.onFidelityShift,
		})
		s.m.Gauge("serve.fidelity.level").Set(0)
		s.ctrl.Start()
		return
	}
	pin := f.Pin
	if pin < 0 {
		pin = 0
	}
	if pin > f.levels() {
		pin = f.levels()
	}
	s.pinned.Store(int64(pin))
	s.m.Gauge("serve.fidelity.level").Set(float64(pin))
}

// fidelitySignals samples the server's saturation state for the
// controller: queue occupancy, windowed queue-wait p95, and whether any
// phase breaker is away from closed.
func (s *Server) fidelitySignals() triage.Signals {
	open := false
	for _, br := range s.breakers {
		if br.State() != serve.Closed {
			open = true
			break
		}
	}
	load := 0.0
	if c := cap(s.queue); c > 0 {
		load = float64(s.queued.Load()) / float64(c)
	}
	return triage.Signals{
		Load:        load,
		WaitP95MS:   s.waitWin.Quantile(0.95),
		BreakerOpen: open,
	}
}

// onFidelityShift records a controller transition in the metrics.
func (s *Server) onFidelityShift(from, to int) {
	dir := "up"
	if to < from {
		dir = "down"
	}
	s.m.Counter(obs.Name("serve.fidelity.shifts", obs.L("direction", dir))).Inc()
	s.m.Gauge("serve.fidelity.level").Set(float64(to))
}

// FidelityLevel is the server's current fidelity level: 0 = full
// fidelity (and always 0 with the ladder off), rising to
// FidelityPolicy.Levels at maximum degradation.
func (s *Server) FidelityLevel() int {
	switch {
	case s.ctrl != nil:
		return s.ctrl.Level()
	case s.cfg.Fidelity.enabled():
		return int(s.pinned.Load())
	default:
		return 0
	}
}

// triageCtx runs the pre-pass for one admitted document: score it,
// classify it at the resolved fidelity level (a context-carried level —
// the fleet envelope — overrides the server's own), count it, and
// attach the decision for ExtractContext to route on. With the ladder
// off it returns ctx untouched — the zero-cost path the determinism
// contracts rely on.
func (s *Server) triageCtx(ctx context.Context, d *Document) context.Context {
	f := s.cfg.Fidelity
	if !f.enabled() {
		return ctx
	}
	level := s.FidelityLevel()
	if lvl, ok := FidelityFrom(ctx); ok {
		level = lvl
		if level > f.levels() {
			level = f.levels()
		}
	}
	pol := f.Triage.At(level, f.levels())
	score := triage.Analyze(d)
	class := pol.Classify(score)
	s.m.Counter(obs.Name("serve.triage.docs",
		obs.L("class", class.String()), obs.L("level", strconv.Itoa(level)))).Inc()
	if class == triage.Full {
		return ctx
	}
	return withTriageDecision(ctx, triageDecision{class: class, level: level, score: score, policy: pol})
}
