package vs2

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"vs2/internal/segment"
)

// This file is the differential harness for the parallel segmenter.
// Determinism is a hard contract: for any input and any worker count,
// the branch-parallel recursion must produce a layout tree
// element-for-element identical to the sequential one, and the
// optimised seam search must reproduce the preserved seed
// implementation (segment.NewReference) exactly. The property-style
// generator below is seeded through rand.go — no wall-clock anywhere —
// so every failure replays from its seed. `make race` runs this suite
// under the race detector.

// diffVocab feeds the generator; topical clusters keep the semantic
// merge phase active rather than degenerate.
var diffVocab = []string{
	"invoice", "total", "amount", "due", "date", "tax", "income", "wages",
	"name", "address", "city", "phone", "contact", "email", "agent",
	"bedroom", "bath", "price", "offer", "open", "house", "concert",
	"live", "music", "doors", "ticket", "free", "admission", "hall",
}

// randomLayoutDoc builds a randomized but structurally plausible page
// from a seed: banded rows of word boxes with jittered gaps, column
// gutters, font-size and colour variation, the occasional image block,
// and (for odd seeds) a few degenerate zero-area elements of the kind
// OCR noise produces.
func randomLayoutDoc(seed int64) *Document {
	rng := newRand(seed)
	w := 200 + float64(rng.Intn(500))
	h := 250 + float64(rng.Intn(600))
	d := &Document{
		ID:     fmt.Sprintf("diff-%d", seed),
		Width:  w,
		Height: h,
	}
	add := func(e Element) {
		e.ID = len(d.Elements)
		d.Elements = append(d.Elements, e)
	}
	colors := []RGB{{R: 20, G: 20, B: 20}, {R: 200, G: 30, B: 30}, {R: 30, G: 60, B: 200}}
	nBands := 1 + rng.Intn(5)
	y := 10.0 + float64(rng.Intn(20))
	for b := 0; b < nBands && y < h-30; b++ {
		bandGap := 8 + float64(rng.Intn(40))
		nRows := 1 + rng.Intn(4)
		font := 6 + float64(rng.Intn(10))
		color := colors[rng.Intn(len(colors))]
		cols := 1 + rng.Intn(3)
		colW := (w - 20) / float64(cols)
		for r := 0; r < nRows && y < h-20; r++ {
			line := b*10 + r
			for c := 0; c < cols; c++ {
				x := 10 + float64(c)*colW + float64(rng.Intn(8))
				nWords := 1 + rng.Intn(4)
				for wd := 0; wd < nWords; wd++ {
					word := diffVocab[rng.Intn(len(diffVocab))]
					ww := float64(len(word)) * font * 0.55
					if x+ww > 10+float64(c+1)*colW-4 {
						break
					}
					add(Element{
						Kind:     TextElement,
						Text:     word,
						Box:      Rect{X: x, Y: y, W: ww, H: font},
						Color:    color,
						FontSize: font,
						Line:     line,
					})
					x += ww + font*0.4
				}
			}
			y += font + 2 + float64(rng.Intn(4))
		}
		if rng.Intn(4) == 0 {
			iw := 30 + float64(rng.Intn(60))
			add(Element{
				Kind:      ImageElement,
				Box:       Rect{X: 10 + float64(rng.Intn(int(w)-50)), Y: y, W: iw, H: iw * 0.6},
				Color:     RGB{R: 120, G: 160, B: 120},
				Line:      -1,
				ImageData: "photo",
			})
			y += iw*0.6 + 6
		}
		y += bandGap
	}
	if seed%2 == 1 {
		// Degenerate geometry: zero-width, zero-height and point-sized
		// boxes, at edges included — the fixed seam-edge crash class.
		add(Element{Kind: TextElement, Text: "x", Box: Rect{X: 0, Y: 0, W: 0, H: 8}, Line: -1})
		add(Element{Kind: TextElement, Text: "y", Box: Rect{X: w - 1, Y: h - 1, W: 6, H: 0}, Line: -1})
		add(Element{Kind: TextElement, Text: "z", Box: Rect{X: w / 2, Y: h / 2, W: 0, H: 0}, Line: -1})
	}
	return d
}

// treeFingerprint renders everything the determinism contract covers:
// the full recursive structure, each node's box, and each node's
// ordered element list (Dump includes per-node element IDs and boxes).
func treeFingerprint(t *testing.T, d *Document, root *Node) string {
	t.Helper()
	if root == nil {
		t.Fatal("nil layout tree")
	}
	return root.Dump(d)
}

func TestDifferentialParallelMatchesSequential(t *testing.T) {
	seeds := 48
	if testing.Short() {
		seeds = 12
	}
	for i := 0; i < seeds; i++ {
		seed := int64(i + 1)
		d := randomLayoutDoc(seed)
		seq := segment.New(segment.Options{Parallel: 1})
		par := segment.New(segment.Options{Parallel: 8})
		ref := segment.NewReference(segment.Options{})

		seqTree := seq.Segment(d)
		refTree := ref.Segment(d)
		seqFP := treeFingerprint(t, d, seqTree)
		if refFP := treeFingerprint(t, d, refTree); seqFP != refFP {
			t.Fatalf("seed %d: optimised sequential tree diverges from reference (seed implementation)\n--- optimised ---\n%s\n--- reference ---\n%s", seed, seqFP, refFP)
		}
		// The parallel segmenter races goroutines against a shared gate;
		// repeat to give nondeterministic schedules a chance to differ.
		for rep := 0; rep < 3; rep++ {
			parFP := treeFingerprint(t, d, par.Segment(d))
			if parFP != seqFP {
				t.Fatalf("seed %d rep %d: parallel tree diverges from sequential\n--- parallel ---\n%s\n--- sequential ---\n%s", seed, rep, parFP, seqFP)
			}
		}
	}
}

// TestDifferentialAblationModes pins the contract on the non-default
// segmenter configurations too: every ablation switch must be
// schedule-independent.
func TestDifferentialAblationModes(t *testing.T) {
	opts := []segment.Options{
		{StraightCutsOnly: true},
		{DisableClustering: true},
		{DisableMerging: true},
		{GridScale: 2, MaxDepth: 4},
	}
	for i := 0; i < 8; i++ {
		d := randomLayoutDoc(int64(100 + i))
		for oi, o := range opts {
			oseq, opar := o, o
			oseq.Parallel, opar.Parallel = 1, 6
			seqFP := treeFingerprint(t, d, segment.New(oseq).Segment(d))
			parFP := treeFingerprint(t, d, segment.New(opar).Segment(d))
			if seqFP != parFP {
				t.Fatalf("seed %d opts[%d]: parallel tree diverges from sequential", 100+i, oi)
			}
		}
	}
}

// TestDifferentialPipelineReports runs the full extraction pipeline —
// segmentation, search, disambiguation, explanation — at both worker
// counts over the example corpora and asserts identical entities,
// identical layout trees, and identical Result.Report candidate sets.
func TestDifferentialPipelineReports(t *testing.T) {
	corpora := []struct {
		name string
		task Task
		gen  func(n int, seed int64) []Labeled
	}{
		{"taxforms", NISTTaxTask(), GenerateTaxForms},
		{"eventposters", EventPosterTask(), GenerateEventPosters},
		{"realestate", RealEstateTask(), GenerateRealEstateFlyers},
	}
	n := 3
	if testing.Short() {
		n = 1
	}
	for _, c := range corpora {
		seq := NewPipeline(Config{Task: c.task, Explain: true, Segment: segment.Options{Parallel: 1}})
		par := NewPipeline(Config{Task: c.task, Explain: true, Segment: segment.Options{Parallel: 8}})
		for _, l := range c.gen(n, 23) {
			sres, serr := seq.ExtractContext(context.Background(), l.Doc)
			pres, perr := par.ExtractContext(context.Background(), l.Doc)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("%s/%s: error mismatch: sequential=%v parallel=%v", c.name, l.Doc.ID, serr, perr)
			}
			if serr != nil {
				continue
			}
			if !reflect.DeepEqual(sres.Entities, pres.Entities) {
				t.Fatalf("%s/%s: extracted entities differ between worker counts", c.name, l.Doc.ID)
			}
			if sres.Tree.Dump(l.Doc) != pres.Tree.Dump(l.Doc) {
				t.Fatalf("%s/%s: layout trees differ between worker counts", c.name, l.Doc.ID)
			}
			// Compare the explainable reports' candidate sets; Degraded is
			// excluded because its records carry wall-clock timestamps.
			sj, err := json.Marshal(sres.Report.Entities)
			if err != nil {
				t.Fatal(err)
			}
			pj, err := json.Marshal(pres.Report.Entities)
			if err != nil {
				t.Fatal(err)
			}
			if string(sj) != string(pj) {
				t.Fatalf("%s/%s: Report candidate sets differ:\n--- sequential ---\n%s\n--- parallel ---\n%s", c.name, l.Doc.ID, sj, pj)
			}
		}
	}
}

// TestSegmentStatsAndFallbackDegradation covers the pool-exhaustion
// contract end to end: a segmenter whose gate is starved by a hostile
// sibling run still produces the correct tree, reports the starvation
// through segment.Stats, and the pipeline surfaces it as a
// "sequential-recursion" degradation in Result.Degraded.
func TestSegmentStatsAndFallbackDegradation(t *testing.T) {
	d := GenerateTaxForms(1, 9)[0].Doc

	s := segment.New(segment.Options{Parallel: 2})
	// Starve the gate: its single extra slot is held for the whole run.
	if !s.StealGateForTest() {
		t.Fatal("could not occupy the gate")
	}
	ctx, st := segment.WithStats(t.Context())
	tree, err := s.SegmentContext(ctx, d)
	s.ReleaseGateForTest()
	if err != nil {
		t.Fatal(err)
	}
	if st.Width != 2 {
		t.Fatalf("Stats.Width = %d, want 2", st.Width)
	}
	if got := st.Spawned.Load(); got != 0 {
		t.Fatalf("Spawned = %d on a starved gate, want 0", got)
	}
	if got := st.Inline.Load(); got == 0 {
		t.Fatal("Inline = 0: starved forks were not recorded")
	}
	if !st.SequentialFallback() {
		t.Fatal("SequentialFallback() = false on a fully starved run")
	}
	want := segment.New(segment.Options{Parallel: 1}).Segment(d)
	if tree.Dump(d) != want.Dump(d) {
		t.Fatal("starved parallel run produced a different tree than sequential")
	}

	// A healthy wide run must NOT report the fallback.
	ctx2, st2 := segment.WithStats(t.Context())
	if _, err := segment.New(segment.Options{Parallel: 8}).SegmentContext(ctx2, d); err != nil {
		t.Fatal(err)
	}
	if st2.SequentialFallback() {
		t.Fatal("healthy run reported SequentialFallback")
	}
	if st2.EmbedHits.Load() == 0 {
		t.Fatal("centroid cache recorded no hits across merge passes")
	}
}
