// serve.go is the resilient concurrent serving layer over the hardened
// pipeline: a bounded worker pool with a bounded admission queue and
// deadline-aware load shedding, per-document retries with seeded
// jittered exponential backoff, per-phase circuit breakers that route
// persistent segment failures onto the linear-segmentation fallback,
// and graceful drain on shutdown. It turns the one-document contract of
// ExtractContext ("degraded result or structured error, never a panic,
// never a hang") into a corpus-scale contract: every admitted document
// gets exactly one reply, every rejected document gets a structured
// *Error, and the process survives bursty, adversarial input mixes.
package vs2

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vs2/internal/obs"
	"vs2/internal/serve"
	"vs2/internal/triage"
)

// PhaseAdmit is the serving layer's admission stage: errors carrying it
// were rejected before the pipeline ran (queue full, queue-wait budget
// exceeded, server closed, caller gone).
const PhaseAdmit Phase = "admit"

// PhaseShard is the sharded serving layer's routing stage: errors
// carrying it mean the document could not be placed on (or answered by)
// any worker shard — the fleet-level analogue of PhaseAdmit.
const PhaseShard Phase = "shard"

// Serving-layer sentinels, dispatchable with errors.Is through *Error.
var (
	// ErrOverloaded marks a document shed by admission control: the
	// queue was full past the queue-wait budget, or the document waited
	// in the queue longer than the budget allows.
	ErrOverloaded = errors.New("server overloaded")
	// ErrServerClosed marks a document submitted during or after
	// Shutdown.
	ErrServerClosed = errors.New("server closed")
	// ErrBreakerOpen marks a phase short-circuited by its tripped
	// circuit breaker. For the segment phase the pipeline degrades to
	// the linear baseline; for search it keeps an empty candidate set;
	// for disambiguation it falls back to first-match. All three are
	// recorded in Result.Degraded.
	ErrBreakerOpen = errors.New("circuit breaker open")
)

// IsTransient classifies a pipeline or serving error for retry: true
// means a later attempt on the same document could plausibly succeed.
//
// Permanent (never retried): invalid documents (ErrInvalidDocument and
// the doc-validator sentinels), a caller that walked away
// (context.Canceled), and ErrServerClosed.
//
// Transient: panics contained at a phase boundary (ErrPanic), budget
// overruns (ErrBudgetExceeded, which also wraps
// context.DeadlineExceeded), admission sheds (ErrOverloaded), tripped
// breakers (ErrBreakerOpen), and any unclassified failure — a backend
// flake is presumed recoverable unless proven otherwise.
func IsTransient(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrInvalidDocument),
		errors.Is(err, ErrEmptyDocument),
		errors.Is(err, ErrNonFinite),
		errors.Is(err, ErrTooManyElements),
		errors.Is(err, ErrPageTooLarge),
		errors.Is(err, ErrServerClosed),
		errors.Is(err, context.Canceled):
		return false
	}
	return true
}

// Transient reports whether the error is worth retrying; see
// IsTransient.
func (e *Error) Transient() bool { return IsTransient(e) }

// RetryPolicy bounds the per-document retry loop. Attempts that fail
// with a transient error (IsTransient) are retried after a seeded,
// jittered exponential backoff; attempts that fail with ErrPanic or
// ErrBudgetExceeded retry in degraded mode — linear segmentation plus
// first-match selection, bypassing the machinery that just failed.
// Invalid documents and cancelled callers are never retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per document
	// (first try included). 0 selects 3; 1 disables retries.
	MaxAttempts int
	// Backoff is the base delay before the first retry; 0 selects 50ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth; 0 selects 2s.
	MaxBackoff time.Duration
	// Seed drives the jitter, making the whole retry schedule
	// reproducible.
	Seed int64
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts == 0 {
		r.MaxAttempts = 3
	}
	if r.MaxAttempts < 1 {
		r.MaxAttempts = 1
	}
	return r
}

// BreakerPolicy tunes the per-phase circuit breakers.
type BreakerPolicy struct {
	// Threshold is the consecutive-failure count that trips a phase's
	// breaker; 0 selects 5, negative disables the breakers entirely.
	Threshold int
	// Cooldown is how long a tripped breaker stays open before probing;
	// 0 selects 5s.
	Cooldown time.Duration
	// Probes is the number of half-open probes admitted (and the
	// consecutive successes required to re-close); 0 selects 1.
	Probes int
}

// TemplatePolicy tunes the serving layer's layout-template fingerprint
// cache (see TemplateCache). The zero value is off: every document pays
// full segmentation, byte-identical to the pre-cache server.
type TemplatePolicy struct {
	// Capacity is the bounded LRU's maximum template count; 0 disables
	// the cache.
	Capacity int
	// Quantum is the geometry tolerance band in page units absorbing OCR
	// jitter between instances of one template; 0 selects 4.
	Quantum float64
}

// ServerConfig tunes a Server. The zero value serves with GOMAXPROCS
// workers (capped at 8), a queue of 4x the workers, a 1s queue-wait
// budget, 3 attempts per document, and breakers tripping after 5
// consecutive phase failures.
type ServerConfig struct {
	// Workers is the worker-pool size; 0 selects min(GOMAXPROCS, 8).
	Workers int
	// Queue is the admission-queue depth; 0 selects 4*Workers.
	Queue int
	// QueueWait is the shedding budget: the longest a document may
	// spend between submission and the start of execution. Admission
	// blocks up to this long for a queue slot, and a dequeued document
	// that already waited past it is shed instead of run. 0 selects 1s;
	// negative sheds immediately when the queue is full.
	QueueWait time.Duration
	// Retry is the per-document retry policy.
	Retry RetryPolicy
	// Breaker tunes the per-phase circuit breakers.
	Breaker BreakerPolicy
	// Fidelity tunes the adaptive fidelity ladder: complexity triage
	// onto the cheap path, and (in adaptive mode) the load controller
	// that widens the triage bands under saturation. The zero value is
	// off — no triage, byte-identical to the pre-ladder server.
	Fidelity FidelityPolicy
	// Template tunes the layout-template fingerprint cache: documents
	// whose quantized geometry matches a memoized layout skip VS2-Segment
	// and reuse the cached tree remapped onto their elements. The cache
	// is wired onto the primary-attempt pipeline only — degraded-mode
	// retries bypass it, like they bypass the breakers. When the handed-in
	// pipeline already carries Config.Templates, that cache is used and
	// this policy is ignored. The zero value is off.
	Template TemplatePolicy
	// Metrics, when non-nil, receives the serving-layer telemetry:
	// serve.queue.depth / serve.inflight gauges, serve.shed /
	// serve.retries / serve.breaker.<phase>.to_<state> counters and the
	// serve.queue.wait.ms histogram. The bare serve.shed counter counts
	// overload sheds (ErrOverloaded); the labeled
	// serve.shed{reason="queue_full"|"queue_wait"|"admission_closed"}
	// series breaks every admission rejection down by reason. With the
	// fidelity ladder on, serve.fidelity.level,
	// serve.fidelity.shifts{direction=...} and
	// serve.triage.docs{class=...,level=...} land here too. Independent
	// of the pipeline's own Config.Metrics; the same registry may serve
	// both.
	Metrics *Metrics
}

// Window returns the number of documents a streaming caller should keep
// in flight to saturate this configuration — effective workers plus
// effective queue depth, after the same defaulting NewServer applies.
// Submitting more than this buys no throughput, only memory; submitting
// fewer starves the pool. cmd/vs2serve and the vs2d shard worker both
// size their streaming windows with it.
func (c ServerConfig) Window() int {
	workers := c.Workers
	if workers <= 0 {
		workers = serve.PoolSize(0)
	}
	queue := c.Queue
	if queue <= 0 {
		queue = 4 * workers
	}
	return workers + queue
}

// Server runs a Pipeline concurrently with admission control, retries
// and circuit breaking. Create one with NewServer, submit documents
// with Extract or ExtractBatch from any number of goroutines, and
// Shutdown to drain. All methods are safe for concurrent use.
type Server struct {
	base *Pipeline // as handed in: degraded-mode retries bypass breakers
	pipe *Pipeline // breaker-wrapped clone the primary attempts run on
	cfg  ServerConfig
	m    *Metrics

	backoff *serve.Backoff

	// The fidelity ladder (nil / zero when ServerConfig.Fidelity is off):
	// the adaptive controller, the queue-wait window feeding its p95
	// signal, the pinned level, and the phase breakers it watches.
	ctrl     *triage.Controller
	waitWin  *obs.Window
	pinned   atomic.Int64
	breakers []*serve.Breaker

	queue    chan *job
	queued   atomic.Int64
	inflight atomic.Int64

	mu        sync.RWMutex // admission gate: Shutdown's write lock is the barrier
	closed    atomic.Bool
	done      chan struct{}
	drained   chan struct{}
	closeOnce sync.Once
	workers   sync.WaitGroup
}

type job struct {
	ctx      context.Context
	doc      *Document
	enqueued time.Time
	out      chan jobResult // buffered; exactly one reply per job
}

type jobResult struct {
	res *Result
	err error
}

// NewServer builds a Server over the pipeline and starts its worker
// pool. The pipeline is not mutated; its backends are wrapped with the
// per-phase circuit breakers on a derived pipeline.
func NewServer(p *Pipeline, cfg ServerConfig) *Server {
	if p == nil {
		panic("vs2: NewServer requires a pipeline")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = serve.PoolSize(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * cfg.Workers
	}
	switch {
	case cfg.QueueWait == 0:
		cfg.QueueWait = time.Second
	case cfg.QueueWait < 0:
		cfg.QueueWait = 0
	}
	cfg.Retry = cfg.Retry.withDefaults()
	s := &Server{
		base:    p,
		cfg:     cfg,
		m:       cfg.Metrics,
		backoff: serve.NewBackoff(cfg.Retry.Backoff, cfg.Retry.MaxBackoff, cfg.Retry.Seed),
		queue:   make(chan *job, cfg.Queue),
		done:    make(chan struct{}),
		drained: make(chan struct{}),
	}
	s.pipe = s.wirePipeline(p, cfg.Breaker)
	s.startFidelity()
	s.m.Gauge("serve.workers").Set(float64(cfg.Workers))
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// wirePipeline derives the pipeline the primary attempts run on: the
// same configuration and backends, with each phase's backend gated by
// its circuit breaker, and — when ServerConfig.Template enables it —
// the layout-template cache wired into the configuration. A negative
// breaker threshold disables the breaker wrapping; primary attempts
// then run on the pipeline as handed in (template cache still applied,
// on a configuration-only clone). The handed-in pipeline is never
// mutated: degraded-mode retries run on it and so bypass both the
// breakers and the cache.
func (s *Server) wirePipeline(p *Pipeline, pol BreakerPolicy) *Pipeline {
	cfg := p.cfg
	if s.cfg.Template.Capacity > 0 && cfg.Templates == nil {
		cfg.Templates = NewTemplateCache(s.cfg.Template.Capacity, s.cfg.Template.Quantum, s.m)
	}
	if pol.Threshold < 0 {
		if cfg.Templates == p.cfg.Templates {
			return p
		}
		clone := *p
		clone.cfg = cfg
		return &clone
	}
	return &Pipeline{
		cfg: cfg,
		segmenter: &breakerSegmenter{
			inner: p.segmenter,
			br:    s.newBreaker(PhaseSegment, pol),
		},
		extractor: &breakerExtractor{
			inner:  p.extractor,
			search: s.newBreaker(PhaseSearch, pol),
			sel:    s.newBreaker(PhaseDisambiguate, pol),
		},
	}
}

func (s *Server) newBreaker(phase Phase, pol BreakerPolicy) *serve.Breaker {
	name := string(phase)
	br := serve.NewBreaker(serve.BreakerConfig{
		Threshold: pol.Threshold,
		Cooldown:  pol.Cooldown,
		Probes:    pol.Probes,
		OnTransition: func(_, to serve.State) {
			s.m.Counter("serve.breaker." + name + ".to_" + to.String()).Inc()
			s.m.Gauge("serve.breaker." + name + ".state").Set(float64(to))
		},
	})
	// The fidelity controller reads breaker state as a saturation signal;
	// keep a reference to every phase breaker wired.
	s.breakers = append(s.breakers, br)
	return br
}

// Extract submits one document and blocks until its result: the
// pipeline's (*Result, error) after admission, retries and breaker
// routing. Rejections — queue full past the queue-wait budget, server
// closed, caller cancelled while queued — return a *Error with
// PhaseAdmit wrapping ErrOverloaded, ErrServerClosed or the context
// error. Every call gets exactly one reply; none block past their
// document's fate being decided.
func (s *Server) Extract(ctx context.Context, d *Document) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	j := &job{ctx: ctx, doc: d, enqueued: time.Now(), out: make(chan jobResult, 1)}
	if err := s.admit(ctx, j); err != nil {
		return nil, err
	}
	r := <-j.out
	return r.res, r.err
}

// BatchResult is one document's outcome within ExtractBatch.
type BatchResult struct {
	// Index is the document's position in the submitted slice.
	Index int
	// Doc is the submitted document.
	Doc *Document
	// Result is the extraction result; nil when Err is non-nil and for
	// documents replayed from a journal.
	Result *Result
	// Err is the structured failure, when the document was rejected or
	// every attempt failed.
	Err error
	// Line is the canonical rendered output line (see RenderLine); set
	// when the batch ran durably (WithDurability) or through
	// ExtractRecorded.
	Line []byte
	// Replayed marks a document skipped because the journal already held
	// its completion: Line carries the cached output, the pipeline never
	// ran.
	Replayed bool
}

// BatchOption tunes one ExtractBatch call.
type BatchOption func(*batchConfig)

type batchConfig struct {
	journal *Journal
}

// WithDurability journals the batch through j: admissions, degradations
// and completions are written ahead of results being returned, documents
// already completed in j (a resumed run) are skipped idempotently with
// their cached lines, and transient failures stay unjournaled so a
// resume re-extracts them. See ExtractRecorded for the exact contract.
func WithDurability(j *Journal) BatchOption {
	return func(c *batchConfig) { c.journal = j }
}

// ExtractBatch submits every document concurrently and returns their
// outcomes in input order. The pool and admission queue bound actual
// parallelism; with a finite QueueWait a batch far larger than the
// queue sheds its overflow with ErrOverloaded rather than queueing
// unboundedly. With WithDurability the batch is journaled and resumable
// document by document.
func (s *Server) ExtractBatch(ctx context.Context, docs []*Document, opts ...BatchOption) []BatchResult {
	var cfg batchConfig
	for _, o := range opts {
		o(&cfg)
	}
	out := make([]BatchResult, len(docs))
	var wg sync.WaitGroup
	for i, d := range docs {
		wg.Add(1)
		go func(i int, d *Document) {
			defer wg.Done()
			if cfg.journal != nil {
				out[i] = s.ExtractRecorded(ctx, i, d, cfg.journal)
				return
			}
			res, err := s.Extract(ctx, d)
			out[i] = BatchResult{Index: i, Doc: d, Result: res, Err: err}
		}(i, d)
	}
	wg.Wait()
	return out
}

// Shutdown stops admission immediately and drains: queued and in-flight
// documents finish, workers exit, and no goroutines are leaked. It
// returns nil once fully drained, or the context's error if the drain
// budget expires first — in that case workers keep finishing in the
// background and a later Shutdown call can be used to await them.
// Idempotent and safe to call concurrently.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		close(s.done) // wakes admissions blocked on a full queue
		s.mu.Lock()   // barrier: every in-flight admission has resolved
		close(s.queue)
		s.mu.Unlock()
		if s.ctrl != nil {
			s.ctrl.Stop()
		}
		go func() {
			s.workers.Wait()
			close(s.drained)
		}()
	})
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("vs2: drain budget exceeded with work in flight: %w", ctx.Err())
	}
}

// admit places the job in the queue or rejects it with a structured
// error. The read lock pairs with Shutdown's write lock so no admission
// can race the queue closing.
func (s *Server) admit(ctx context.Context, j *job) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		s.m.Counter("serve.rejected.closed").Inc()
		s.m.Counter(obs.Name("serve.shed", obs.L("reason", "admission_closed"))).Inc()
		return &Error{Phase: PhaseAdmit, Stage: "closed", Err: ErrServerClosed}
	}
	select {
	case s.queue <- j:
		s.enqueued()
		return nil
	default:
	}
	if s.cfg.QueueWait <= 0 {
		s.shed("queue_full")
		return &Error{Phase: PhaseAdmit, Stage: "queue-full",
			Err: fmt.Errorf("%w: queue full (depth %d)", ErrOverloaded, cap(s.queue))}
	}
	admit, cancel := context.WithTimeout(ctx, s.cfg.QueueWait)
	defer cancel()
	select {
	case s.queue <- j:
		s.enqueued()
		return nil
	case <-s.done:
		s.m.Counter("serve.rejected.closed").Inc()
		s.m.Counter(obs.Name("serve.shed", obs.L("reason", "admission_closed"))).Inc()
		return &Error{Phase: PhaseAdmit, Stage: "closed", Err: ErrServerClosed}
	case <-admit.Done():
		if err := ctx.Err(); err != nil {
			s.m.Counter("serve.abandoned").Inc()
			return &Error{Phase: PhaseAdmit, Stage: "admission", Err: err}
		}
		s.shed("queue_full")
		return &Error{Phase: PhaseAdmit, Stage: "queue-full",
			Err: fmt.Errorf("%w: no queue slot within the %v queue-wait budget", ErrOverloaded, s.cfg.QueueWait)}
	}
}

// shed counts one ErrOverloaded rejection: the bare serve.shed counter
// (the series /slo and the chaos suites pin) plus the per-reason
// labeled breakdown. Admission-closed rejections are not ErrOverloaded
// and only land on the labeled series.
func (s *Server) shed(reason string) {
	s.m.Counter("serve.shed").Inc()
	s.m.Counter(obs.Name("serve.shed", obs.L("reason", reason))).Inc()
}

func (s *Server) enqueued() {
	s.m.Counter("serve.enqueued").Inc()
	s.m.Gauge("serve.queue.depth").Set(float64(s.queued.Add(1)))
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.handle(j)
	}
}

// handle decides one dequeued job: shed it if its queue wait outran the
// budget or its caller is gone, otherwise run the retry loop. Exactly
// one reply is sent in every path.
func (s *Server) handle(j *job) {
	s.m.Gauge("serve.queue.depth").Set(float64(s.queued.Add(-1)))
	wait := time.Since(j.enqueued)
	s.m.Histogram("serve.queue.wait.ms", nil).Observe(float64(wait) / float64(time.Millisecond))
	s.waitWin.Observe(float64(wait) / float64(time.Millisecond)) // nil-safe; fidelity controller's p95 signal
	if err := j.ctx.Err(); err != nil {
		s.m.Counter("serve.abandoned").Inc()
		j.out <- jobResult{err: &Error{Phase: PhaseAdmit, Stage: "queued", Err: err}}
		return
	}
	if w := s.cfg.QueueWait; w > 0 && wait > w {
		s.shed("queue_wait")
		j.out <- jobResult{err: &Error{Phase: PhaseAdmit, Stage: "queue-wait",
			Err: fmt.Errorf("%w: waited %v beyond the %v queue-wait budget",
				ErrOverloaded, wait.Round(time.Millisecond), w)}}
		return
	}
	s.m.Gauge("serve.inflight").Set(float64(s.inflight.Add(1)))
	res, err := s.run(j.ctx, j.doc)
	s.m.Gauge("serve.inflight").Set(float64(s.inflight.Add(-1)))
	if err != nil {
		s.m.Counter("serve.failed").Inc()
	} else {
		s.m.Counter("serve.completed").Inc()
	}
	j.out <- jobResult{res: res, err: err}
}

// run is the per-document attempt loop: primary attempts on the
// breaker-wrapped pipeline, backoff between attempts, and — once a
// panic or budget overrun has been seen — degraded-mode attempts that
// bypass the machinery that just failed. Permanent errors and drained
// servers end the loop immediately.
func (s *Server) run(ctx context.Context, d *Document) (*Result, error) {
	// The fidelity pre-pass: with the ladder on, triage may mark the
	// document for the cheap or skip path at the current level; the
	// decision rides the context into ExtractContext, which records the
	// routing in Result.Degraded. With the ladder off this is a no-op.
	ctx = s.triageCtx(ctx, d)
	var lastErr error
	degraded := false
	for attempt := 0; attempt < s.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.m.Counter("serve.retries").Inc()
			// The sleep aborts promptly on caller cancellation and on
			// drain (finish the work already attempted, don't start new
			// attempts); either way the document fails with its last
			// error rather than hanging out the interval.
			if err := s.backoff.Sleep(ctx, s.done, attempt-1); err != nil {
				return nil, lastErr
			}
		}
		var res *Result
		var err error
		if degraded {
			res, err = s.degradedExtract(ctx, d, lastErr)
		} else {
			res, err = s.pipe.ExtractContext(ctx, d)
		}
		if err == nil {
			return res, nil
		}
		lastErr = err
		if j := ctx.Err(); j != nil || !IsTransient(err) {
			break
		}
		if errors.Is(err, ErrPanic) || errors.Is(err, ErrBudgetExceeded) {
			degraded = true
		}
	}
	return nil, lastErr
}

// degradedExtract is the degraded-mode attempt: linear segmentation and
// first-match selection on the unwrapped backends, bypassing both
// VS2-Segment and Eq. 2 disambiguation (the stages that panic or outrun
// budgets on pathological documents). The search still runs — it is the
// one stage with no cheaper substitute — under panic containment; if it
// fails again the document fails for good with a structured error.
// Every bypass is recorded in Result.Degraded.
func (s *Server) degradedExtract(ctx context.Context, d *Document, cause error) (*Result, error) {
	s.m.Counter("serve.retries.degraded").Inc()
	if err := ctx.Err(); err != nil {
		return nil, &Error{Phase: PhaseSegment, Stage: "degraded-retry", Err: err}
	}
	reason := fmt.Errorf("degraded-mode retry: %w", cause)
	tree := s.base.linearTree(d)
	blocks := tree.Leaves()
	res := &Result{Tree: tree, Blocks: blocks}
	res.degrade(PhaseSegment, "linear-segmentation", reason)
	cands, err := s.degradedSearch(ctx, d, blocks)
	if err != nil {
		if cands == nil {
			return nil, &Error{Phase: PhaseSearch, Stage: "degraded-retry", Err: err}
		}
		res.degrade(PhaseSearch, "partial-search", err)
	}
	entities, err := s.degradedSelect(d, cands)
	if err != nil {
		return nil, &Error{Phase: PhaseDisambiguate, Stage: "degraded-retry", Err: err}
	}
	res.degrade(PhaseDisambiguate, "first-match", reason)
	res.Entities = entities
	return res, nil
}

func (s *Server) degradedSearch(ctx context.Context, d *Document, blocks []*Node) (cands map[string][]Candidate, err error) {
	defer recoverPhase(&err)
	return s.base.extractor.SearchContext(ctx, d, blocks, s.base.cfg.Task.Sets)
}

func (s *Server) degradedSelect(d *Document, cands map[string][]Candidate) (out []Extraction, err error) {
	defer recoverPhase(&err)
	return s.base.extractor.SelectFirstMatch(d, cands, s.base.cfg.Task.Sets), nil
}

// Circuit-breaker backend wrappers. Each phase's backend reports its
// outcomes to that phase's breaker; a tripped breaker short-circuits
// the phase with an error wrapping ErrBreakerOpen, which the pipeline's
// degradation ladder absorbs: segment falls back to the linear
// baseline, search keeps an empty candidate set, disambiguation falls
// back to first-match — all recorded in Result.Degraded. Caller
// cancellation is not counted against a breaker; panics are counted and
// re-raised for the pipeline's phase-boundary containment.

func breakerOutcome(br *serve.Breaker, err error) {
	switch {
	case err == nil:
		br.Success()
	case errors.Is(err, context.Canceled):
		// The caller walked away; says nothing about the backend.
	default:
		br.Failure()
	}
}

type breakerSegmenter struct {
	inner SegmentBackend
	br    *serve.Breaker
}

func (w *breakerSegmenter) SegmentContext(ctx context.Context, d *Document) (tree *Node, err error) {
	if !w.br.Allow() {
		return nil, fmt.Errorf("%w: segment phase short-circuited", ErrBreakerOpen)
	}
	defer func() {
		if r := recover(); r != nil {
			w.br.Failure()
			panic(r)
		}
	}()
	tree, err = w.inner.SegmentContext(ctx, d)
	breakerOutcome(w.br, err)
	return tree, err
}

type breakerExtractor struct {
	inner       ExtractBackend
	search, sel *serve.Breaker
}

func (w *breakerExtractor) SearchContext(ctx context.Context, d *Document, blocks []*Node, sets []*PatternSet) (cands map[string][]Candidate, err error) {
	if !w.search.Allow() {
		return map[string][]Candidate{}, fmt.Errorf("%w: search phase short-circuited", ErrBreakerOpen)
	}
	defer func() {
		if r := recover(); r != nil {
			w.search.Failure()
			panic(r)
		}
	}()
	cands, err = w.inner.SearchContext(ctx, d, blocks, sets)
	breakerOutcome(w.search, err)
	return cands, err
}

func (w *breakerExtractor) SelectContext(ctx context.Context, d *Document, blocks []*Node, cands map[string][]Candidate, sets []*PatternSet) (out []Extraction, err error) {
	if !w.sel.Allow() {
		return nil, fmt.Errorf("%w: disambiguation short-circuited", ErrBreakerOpen)
	}
	defer func() {
		if r := recover(); r != nil {
			w.sel.Failure()
			panic(r)
		}
	}()
	out, err = w.inner.SelectContext(ctx, d, blocks, cands, sets)
	breakerOutcome(w.sel, err)
	return out, err
}

// SelectFirstMatch stays unwrapped: it is the last-resort fallback and
// must remain available while every breaker is open.
func (w *breakerExtractor) SelectFirstMatch(d *Document, cands map[string][]Candidate, sets []*PatternSet) []Extraction {
	return w.inner.SelectFirstMatch(d, cands, sets)
}
