// report.go is the explainable-extraction surface: when Config.Explain is
// set, ExtractContext attaches a Report to the Result that says, for every
// extracted entity, where in the layout tree the winning match lived,
// which lexico-syntactic pattern produced it, and how the Eq. 2 multimodal
// disambiguation scored it against the losing candidates — the paper's
// Algorithm 1 / Eq. 1 / Eq. 2 decision points, rendered for an operator.
package vs2

import (
	"fmt"
	"strconv"
	"strings"

	"vs2/internal/doc"
	"vs2/internal/extract"
)

// CostTerms is the per-term breakdown of one Eq. 2 evaluation (ΔD, ΔH,
// ΔSim, ΔWd before weighting).
type CostTerms = extract.Terms

// CandidateReport describes one candidate considered for an entity.
type CandidateReport struct {
	// Text is the candidate's surface string.
	Text string `json:"text"`
	// Pattern names the lexico-syntactic alternative that matched.
	Pattern string `json:"pattern,omitempty"`
	// PatternScore is the pattern-specificity tie-breaker in [0,1].
	PatternScore float64 `json:"pattern_score"`
	// BlockPath locates the candidate's logical block in the layout tree
	// as a slash-separated child-index path from the root ("/" is the
	// root; "/1/0" is the first child of the second child).
	BlockPath string `json:"block_path"`
	// Box is the candidate's visual grounding in page coordinates.
	Box Rect `json:"box"`
	// Distance is the Eq. 2 distance to the nearest interest point.
	Distance float64 `json:"distance"`
	// Terms is the breakdown of Distance.
	Terms CostTerms `json:"terms"`
	// Won marks the selected candidate.
	Won bool `json:"won"`
}

// EntityReport explains one entity's disambiguation: every candidate
// ranked best-first, the winner flagged.
type EntityReport struct {
	// Entity is the entity key.
	Entity string `json:"entity"`
	// Strategy names the conflict resolution used: "multimodal", "lesk"
	// or "first-match".
	Strategy string `json:"strategy"`
	// InterestPoints is how many interest points anchored the Eq. 2
	// ranking (0 for non-multimodal strategies).
	InterestPoints int `json:"interest_points"`
	// Candidates are the considered matches, winner first.
	Candidates []CandidateReport `json:"candidates"`
}

// Report explains one extraction run. It is attached to Result when
// Config.Explain is set and the built-in extractor ran (custom
// ExtractBackends that don't know the explanation protocol leave it
// sparse).
type Report struct {
	// Entities holds one explanation per entity that had candidates.
	Entities []EntityReport `json:"entities"`
	// Degraded echoes the run's degradations, timestamped.
	Degraded []Degradation `json:"degraded,omitempty"`
	// Template reports the layout-template cache probe, when a cache was
	// configured: "hit" (VS2-Segment was skipped, the memoized tree was
	// remapped onto this document) or "miss". Empty when no cache is
	// wired or the run was triaged onto a cheap path before the probe.
	Template string `json:"template,omitempty"`
}

// buildReport converts the extractor's explanation records into the
// public report, resolving block pointers to layout-tree paths.
func buildReport(tree *Node, exps []extract.Explanation, degraded []Degradation) *Report {
	r := &Report{Degraded: degraded}
	for _, ex := range exps {
		er := EntityReport{
			Entity:         ex.Entity,
			Strategy:       ex.Strategy,
			InterestPoints: ex.InterestPoints,
			Candidates:     make([]CandidateReport, 0, len(ex.Candidates)),
		}
		for _, c := range ex.Candidates {
			er.Candidates = append(er.Candidates, CandidateReport{
				Text:         c.Text,
				Pattern:      c.Pattern,
				PatternScore: c.PatternScore,
				BlockPath:    blockPath(tree, c.Block),
				Box:          c.Box,
				Distance:     c.Distance,
				Terms:        c.Terms,
				Won:          c.Won,
			})
		}
		r.Entities = append(r.Entities, er)
	}
	return r
}

// blockPath returns the child-index path from the tree root to target,
// "/" for the root itself and "?" when the node is not in the tree (a
// candidate that survived from a pre-sanitation block set).
func blockPath(tree, target *doc.Node) string {
	if tree == nil || target == nil {
		return "?"
	}
	if tree == target {
		return "/"
	}
	var walk func(n *doc.Node, prefix string) (string, bool)
	walk = func(n *doc.Node, prefix string) (string, bool) {
		for i, c := range n.Children {
			p := prefix + "/" + strconv.Itoa(i)
			if c == target {
				return p, true
			}
			if found, ok := walk(c, p); ok {
				return found, true
			}
		}
		return "", false
	}
	if p, ok := walk(tree, ""); ok {
		return p
	}
	return "?"
}

// String renders the report as operator-readable text.
func (r *Report) String() string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	for _, e := range r.Entities {
		fmt.Fprintf(&sb, "%s  (%s, %d interest points, %d candidates)\n",
			e.Entity, e.Strategy, e.InterestPoints, len(e.Candidates))
		for _, c := range e.Candidates {
			mark := " "
			if c.Won {
				mark = "*"
			}
			fmt.Fprintf(&sb, "  %s %-30q block %-8s F=%.4f", mark, truncate(c.Text, 28), c.BlockPath, c.Distance)
			if c.Pattern != "" {
				fmt.Fprintf(&sb, "  pattern=%s", c.Pattern)
			}
			fmt.Fprintf(&sb, "\n      ΔD=%.4f ΔH=%.4f ΔSim=%.4f ΔWd=%.4f\n",
				c.Terms.DD, c.Terms.DH, c.Terms.DSim, c.Terms.DWd)
		}
	}
	for _, g := range r.Degraded {
		fmt.Fprintf(&sb, "degraded: %s\n", g)
	}
	if r.Template != "" {
		fmt.Fprintf(&sb, "template cache: %s\n", r.Template)
	}
	return sb.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
