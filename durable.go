// durable.go is the durability layer over the serving layer: a
// write-ahead journal of corpus progress (admissions, degradations,
// completions with their rendered result lines) plus checkpoint
// compaction, so a long batch run killed at any instant resumes without
// losing, duplicating or reordering a single result. The framing,
// replay and checkpoint mechanics live in internal/journal; this file
// binds them to the Server's per-document lifecycle and the PR 3 retry
// classifier: completed documents and permanent rejections are safe to
// replay from the journal verbatim, transient failures are not recorded
// and re-extract on resume.
package vs2

import (
	"context"
	"encoding/json"
	"fmt"

	"vs2/internal/journal"
)

// PhaseJournal marks errors from the durability layer itself: the
// document's extraction finished, but recording it durably did not. Such
// documents are reported failed — an exactly-once pipeline must not emit
// results it cannot prove it persisted — and re-extract on resume.
const PhaseJournal Phase = "journal"

// JournalOptions tunes OpenJournal.
type JournalOptions struct {
	// Resume loads the existing journal and checkpoint instead of
	// starting fresh. Resuming a path with no journal is legal (empty
	// state), so the first run and a resumed run can share a command
	// line.
	Resume bool
	// Sync is the fsync policy: "always" (default — a completion
	// acknowledged is a completion that survives kill -9), "interval"
	// (fsync every SyncEvery appends; a crash re-extracts at most the
	// unsynced suffix), or "never" (the OS decides).
	Sync string
	// SyncEvery is the "interval" cadence; 0 selects 64.
	SyncEvery int
	// CompactEvery checkpoints and truncates the journal after that many
	// new completions; 0 compacts only on Close.
	CompactEvery int
	// MaxRecord bounds one journal record; 0 selects 16 MiB.
	MaxRecord int
	// Owner, when non-empty, stamps the journal and checkpoint with this
	// label and refuses to resume state stamped with a different one —
	// the shard-aware resume guard: shard 2's journal cannot silently be
	// replayed as shard 0's.
	Owner string
	// Metrics, when non-nil, receives the journal.* counters and gauges
	// (records appended, fsyncs, replayed records, truncated-tail bytes
	// dropped, compactions).
	Metrics *Metrics
}

// Journal is durable corpus-processing state: which documents have
// completed and with exactly which output lines. A nil *Journal is a
// valid disabled journal, mirroring the nil *Metrics idiom, so call
// sites thread it unconditionally.
type Journal struct {
	st   *journal.State
	path string
}

// OpenJournal opens (or, with Resume, recovers) the journal at path. The
// checkpoint lives at path+".ckpt". Recovery replays checkpoint then
// journal, drops a torn tail (counting the bytes in the metrics), and
// truncates the tear so new records append cleanly.
func OpenJournal(path string, o JournalOptions) (*Journal, error) {
	pol, err := journal.ParseSync(o.Sync)
	if err != nil {
		return nil, err
	}
	st, err := journal.OpenState(path, journal.StateOptions{
		Options: journal.Options{
			Sync:      pol,
			SyncEvery: o.SyncEvery,
			MaxRecord: o.MaxRecord,
			Metrics:   o.Metrics,
		},
		Resume:       o.Resume,
		CompactEvery: o.CompactEvery,
		Owner:        o.Owner,
	})
	if err != nil {
		return nil, err
	}
	return &Journal{st: st, path: path}, nil
}

// Completed returns the journaled result line of a document that already
// finished, in this run or a recovered one.
func (j *Journal) Completed(id string) ([]byte, bool) {
	if j == nil {
		return nil, false
	}
	return j.st.Completed(id)
}

// Replayed reports what recovery found: completions restored and
// documents the crashed run had admitted but never finished (these
// re-extract).
func (j *Journal) Replayed() (completions, inflight int) {
	if j == nil {
		return 0, 0
	}
	return j.st.Replayed()
}

// Compact checkpoints the completed set and truncates the journal.
func (j *Journal) Compact() error {
	if j == nil {
		return nil
	}
	return j.st.Compact()
}

// Close compacts (bounding the next resume's replay work) and closes.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	if err := j.st.Compact(); err != nil {
		j.st.Close() //nolint:errcheck
		return err
	}
	return j.st.Close()
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Adopt merges a retired shard's journal (already transferred to this
// journal's owner — see TransferJournal) into this journal: entries are
// re-journaled idempotently, compacted for durability, and the source
// files removed. A nil journal adopts nothing. Returns how many entries
// were merged.
func (j *Journal) Adopt(path string) (int, error) {
	if j == nil {
		return 0, nil
	}
	return j.st.Adopt(path)
}

// TransferJournal re-stamps the quiesced journal at path from owner
// `from` to owner `to` — the front-end half of a planned shard handoff,
// run after the departing worker has exited. The successor worker then
// adopts the journal under its own label. Unplanned owner mismatches
// keep failing with journal.ErrWrongOwner.
func TransferJournal(path, from, to string) error {
	return journal.Transfer(path, journal.Options{}, from, to)
}

// DocLine is the canonical per-document output line of a batch run — the
// unit the journal caches and a resumed run re-emits byte for byte. Its
// rendering must stay deterministic: no timestamps, no map iteration.
type DocLine struct {
	ID       string       `json:"id"`
	Entities []Extraction `json:"entities,omitempty"`
	Degraded []string     `json:"degraded,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// RenderLine renders one batch outcome as its canonical output line
// (JSON, no trailing newline). Degradations are rendered without their
// wall-clock timestamps — the line must be reproducible across runs for
// the crash-recovery byte-identity contract.
func RenderLine(r BatchResult) []byte {
	out := DocLine{}
	if r.Doc != nil {
		out.ID = r.Doc.ID
	}
	switch {
	case r.Err != nil:
		out.Error = r.Err.Error()
	case r.Result != nil:
		out.Entities = r.Result.Entities
		for _, g := range r.Result.Degraded {
			s := fmt.Sprintf("%s degraded to %s", g.Phase, g.Fallback)
			if g.Cause != "" {
				s += ": " + g.Cause
			}
			out.Degraded = append(out.Degraded, s)
		}
	}
	data, err := json.Marshal(out)
	if err != nil {
		// Extraction and error strings always marshal; reaching this
		// means a programming error, and the line still must exist.
		data, _ = json.Marshal(DocLine{ID: out.ID, Error: "render: " + err.Error()})
	}
	return data
}

// recordKey is the journal key for a document: its ID, or a positional
// key when the corpus has anonymous documents. Resume correctness
// requires keys to be stable and unique across runs over the same
// corpus.
func recordKey(d *Document, index int) string {
	if d != nil && d.ID != "" {
		return d.ID
	}
	return fmt.Sprintf("#%d", index)
}

// ExtractRecorded runs one document through the server with durable
// record-keeping:
//
//   - A document the journal already holds is skipped idempotently; its
//     cached line returns with Replayed set and the pipeline never runs.
//   - Otherwise the admission is journaled, the document extracted, its
//     degradations journaled, and — for completions and permanent
//     rejections (see IsTransient) — its rendered line journaled as a
//     completion *before* the caller sees it: the write-ahead contract
//     that makes a crash between journal and output emission safe.
//   - Transient failures (sheds, breaker trips, budget overruns, panics
//     that exhausted retries) are not recorded as completions: a resumed
//     run re-extracts them rather than replaying a flake forever.
//
// With a nil journal it degrades to Extract plus line rendering.
func (s *Server) ExtractRecorded(ctx context.Context, index int, d *Document, j *Journal) BatchResult {
	return s.ExtractRecordedKey(ctx, index, recordKey(d, index), d, j)
}

// ExtractRecordedKey is ExtractRecorded with the journal key chosen by
// the caller instead of derived from the document. A sharded front end
// uses it to keep keys stable across restarts and resumes: the shard
// worker journals under the key the router assigned, not under a
// positional key that would shift when only part of the corpus is
// re-sent to a restarted shard.
func (s *Server) ExtractRecordedKey(ctx context.Context, index int, key string, d *Document, j *Journal) BatchResult {
	br := BatchResult{Index: index, Doc: d}
	if line, ok := j.Completed(key); ok {
		br.Replayed = true
		br.Line = line
		s.m.Counter("serve.replayed").Inc()
		return br
	}
	if j != nil {
		if err := j.st.Admit(key, index); err != nil {
			br.Err = &Error{Phase: PhaseJournal, Stage: "admit", Err: err}
			br.Line = RenderLine(br)
			return br
		}
	}
	br.Result, br.Err = s.Extract(ctx, d)
	br.Line = RenderLine(br)
	if j != nil && (br.Err == nil || !IsTransient(br.Err)) {
		if br.Result != nil {
			for _, g := range br.Result.Degraded {
				if err := j.st.Degrade(key, string(g.Phase), g.Fallback); err != nil {
					return journalFailed(br, "degrade", err)
				}
			}
		}
		if err := j.st.Complete(key, br.Line); err != nil {
			return journalFailed(br, "complete", err)
		}
	}
	return br
}

// journalFailed downgrades a finished document to a journal failure: the
// result cannot be acknowledged because it was never made durable.
func journalFailed(br BatchResult, stage string, err error) BatchResult {
	br.Result = nil
	br.Err = &Error{Phase: PhaseJournal, Stage: stage, Err: err}
	br.Line = RenderLine(br)
	return br
}
