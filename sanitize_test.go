package vs2

// Focused unit tests of the block-sanitization fallback: a segmenter
// returning damaged output must surface as a proper Degradation entry
// in Result.Degraded (phase segment), not as a silent repair or a bare
// note string.

import (
	"context"
	"math"
	"strings"
	"testing"

	"vs2/internal/doc"
)

// damagedSegmenter returns a tree whose leaves a correct segmenter
// cannot produce: one valid block over the first half of the elements,
// one NaN-box block, and one block pointing outside the document. The
// second half of the elements is left uncovered.
type damagedSegmenter struct{}

func (damagedSegmenter) SegmentContext(_ context.Context, d *Document) (*Node, error) {
	n := len(d.Elements)
	var valid []int
	for i := 0; i < n/2; i++ {
		valid = append(valid, i)
	}
	root := doc.NewTree(d)
	nanBox := root.Box
	nanBox.X = math.NaN()
	root.Children = []*Node{
		{Box: d.BoundingBoxOf(valid), Elements: valid, Depth: 1},
		{Box: nanBox, Elements: []int{0}, Depth: 1},
		{Box: root.Box, Elements: []int{n + 5}, Depth: 1},
	}
	return root, nil
}

func TestSanitizeBlocksReturnsNote(t *testing.T) {
	d := chaosDoc()
	tree, err := damagedSegmenter{}.SegmentContext(context.Background(), d)
	if err != nil {
		t.Fatalf("stub segmenter: %v", err)
	}
	blocks, note := sanitizeBlocks(d, tree)
	if note == "" {
		t.Fatal("damaged tree sanitized with no note")
	}
	if !strings.Contains(note, "invalid blocks dropped") {
		t.Fatalf("note = %q, want dropped-block accounting", note)
	}
	covered := make([]bool, len(d.Elements))
	for _, b := range blocks {
		if !validBlock(d, b) {
			t.Fatalf("sanitized set kept invalid block %+v", b)
		}
		for _, id := range b.Elements {
			covered[id] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("element %d lost during sanitization", i)
		}
	}
}

// TestSanitizeDegradationRecorded is the satellite contract: the
// dropped-block note appears in Result.Degraded as a structured entry,
// with phase, fallback name, cause, and timestamp all populated.
func TestSanitizeDegradationRecorded(t *testing.T) {
	p := NewPipeline(Config{Task: EventPosterTask(), Segmenter: damagedSegmenter{}})
	res, err := p.ExtractContext(context.Background(), chaosDoc())
	if err != nil {
		t.Fatalf("ExtractContext: %v", err)
	}
	var entry *Degradation
	for i := range res.Degraded {
		if res.Degraded[i].Phase == PhaseSegment && res.Degraded[i].Fallback == "sanitized-blocks" {
			entry = &res.Degraded[i]
		}
	}
	if entry == nil {
		t.Fatalf("degradations = %+v, want a sanitized-blocks entry for phase segment", res.Degraded)
	}
	if entry.Cause == "" {
		t.Fatal("sanitized-blocks degradation has no cause")
	}
	if entry.Time.IsZero() {
		t.Fatal("sanitized-blocks degradation has no timestamp")
	}
	if !res.IsDegraded() {
		t.Fatal("IsDegraded() false despite recorded degradation")
	}
}
