package vs2

// Rebalance chaos harness for live fleet reconfiguration: a real vs2d
// front end serves a batch while the harness resizes the fleet under it
// — 3 shards out to 5 through POST /admin/scale, then in to 2 — and
// SIGKILLs a random shard inside the transition window at randomized
// delays. Odd iterations also roll the fleet via SIGHUP between the two
// scales. The merged stdout must stay byte-identical to an undisturbed
// 3-shard run, every document emitted exactly once: resharding moves
// keys, drains retirees through their exiting children, hands retired
// journals to live successors and survives a kill at any point in that
// dance without losing, duplicating or reordering a line.
//
// Shares the process-fleet helpers of shard_chaos_test.go (build,
// pidfiles, admin scrapes). Subprocess-heavy: runs only in the full
// suite (`make reshard-chaos`); -short skips it.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// adminPost POSTs one admin endpoint. Reconfigurations block until the
// transition completes, so the client waits well past -reconfig-timeout.
func adminPost(t *testing.T, url string) (int, string) {
	t.Helper()
	client := http.Client{Timeout: 3 * time.Minute}
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, body.String()
}

// outputIDs parses the id of every emitted line, failing on any line
// that is not a well-formed document result.
func outputIDs(t *testing.T, out []byte) []string {
	t.Helper()
	var ids []string
	for _, line := range bytes.Split(bytes.TrimSpace(out), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var l DocLine
		if err := json.Unmarshal(line, &l); err != nil {
			t.Fatalf("unparseable output line %q: %v", line, err)
		}
		ids = append(ids, l.ID)
	}
	return ids
}

// sumMetric sums every sample of one family in a Prometheus exposition
// (labelled series included) and reports how many series matched.
func sumMetric(body, family string) (sum float64, series int) {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, family+"{") && !strings.HasPrefix(line, family+" ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			sum += v
			series++
		}
	}
	return sum, series
}

// TestReshardChaos is the acceptance test of the live-reconfiguration
// PR: scale 3 -> 5 -> 2 under traffic with a SIGKILL landing inside the
// transition at >= 8 randomized offsets, and the output never changes.
func TestReshardChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("reshard chaos spawns real process fleets; skipped in -short")
	}
	bin := buildVS2DBinary(t)
	corpus := chaosCorpus(t, 90)
	lines := bytes.Split(bytes.TrimSpace(corpus), []byte("\n"))
	if len(lines) != 90 {
		t.Fatalf("corpus has %d lines, want 90", len(lines))
	}

	golden := runVS2D(t, bin, corpus, t.TempDir())
	goldenIDs := outputIDs(t, golden)
	if len(goldenIDs) != 90 {
		t.Fatalf("golden run emitted %d lines, want 90", len(goldenIDs))
	}

	rnd := rand.New(rand.NewSource(2207)) // seeded: a failure reproduces
	const iterations = 9
	landed := 0
	var finalMetrics string
	for i := 0; i < iterations; i++ {
		state := t.TempDir()
		cmd := exec.Command(bin, vs2dArgs(state, "-admin", "127.0.0.1:0")...)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			t.Fatal(err)
		}
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()
		reaped := false
		defer func() {
			if reaped {
				return
			}
			stdin.Close()      //nolint:errcheck
			cmd.Process.Kill() //nolint:errcheck
			<-exited
		}()
		base := "http://" + waitAdminAddr(t, state)
		feed := func(from, to int) {
			if _, err := stdin.Write(append(bytes.Join(lines[from:to], []byte("\n")), '\n')); err != nil {
				t.Fatalf("iteration %d: feeding lines %d..%d: %v", i, from, to, err)
			}
		}

		// Wave 1 lands on the original 3-shard fleet, then the fleet grows
		// to 5 under that traffic.
		feed(0, 30)
		if code, body := adminPost(t, base+"/admin/scale?shards=5"); code != http.StatusOK {
			t.Fatalf("iteration %d: scale to 5: HTTP %d, body %s\nstderr:\n%s", i, code, body, stderr.String())
		}

		// Odd iterations roll the grown fleet via SIGHUP — the roll
		// serializes with the scale-in below, in whichever order the
		// reconfig mutex settles.
		rolled := i%2 == 1
		if rolled {
			if err := cmd.Process.Signal(syscall.SIGHUP); err != nil {
				t.Fatal(err)
			}
		}

		// Wave 2 keeps documents in flight while the fleet shrinks to 2;
		// a SIGKILL lands on a random shard inside the transition window.
		feed(30, 50)
		scaleDone := make(chan struct {
			code int
			body string
		}, 1)
		go func() {
			code, body := adminPost(t, base+"/admin/scale?shards=2")
			scaleDone <- struct {
				code int
				body string
			}{code, body}
		}()
		feed(50, 80)
		hit := false
		var res struct {
			code int
			body string
		}
		done := false
		armDeadline := time.Now().Add(30 * time.Second)
		for !done && !hit {
			select {
			case res = <-scaleDone:
				done = true
			default:
			}
			if done {
				break
			}
			if _, body := adminGet(t, base+"/metrics"); body != "" {
				if v, ok := metricValue(body, "shard_reconfig_active"); ok && v == 1 {
					// Inside a transition: wait a randomized offset, then kill
					// a random member of the 5-shard fleet — a draining
					// retiree, an adopting successor, or a rolling child.
					time.Sleep(time.Duration(rnd.Intn(60)) * time.Millisecond)
					target := rnd.Intn(5)
					if pid := shardPid(state, target); pid > 0 && syscall.Kill(pid, syscall.SIGKILL) == nil {
						hit = true
						landed++
						t.Logf("iteration %d: SIGKILLed shard %d mid-transition", i, target)
					}
				}
			}
			if time.Now().After(armDeadline) {
				t.Fatalf("iteration %d: scale to 2 neither completed nor showed an active transition", i)
			}
			time.Sleep(time.Millisecond)
		}
		if !done {
			res = <-scaleDone
		}
		if res.code != http.StatusOK {
			t.Fatalf("iteration %d: scale to 2: HTTP %d, body %s\nstderr:\n%s", i, res.code, res.body, stderr.String())
		}

		// Every transition settles — scale_out, scale_in and, when sent,
		// the roll — before the tail wave proves the 2-shard fleet serves.
		wantEpoch := float64(2)
		if rolled {
			wantEpoch = 3
		}
		finalMetrics = waitScrape(t, base+"/metrics", "reconfigurations settled", func(code int, body string) bool {
			active, aok := metricValue(body, "shard_reconfig_active")
			epoch, eok := metricValue(body, "shard_reconfig_epoch")
			return code == http.StatusOK && aok && active == 0 && eok && epoch == wantEpoch
		})

		// The epoch-stamped reconfig series must tell the transition story.
		for _, want := range []string{
			`shard_reconfig_transitions{epoch="`,
			`kind="scale_out"`,
			`kind="scale_in"`,
		} {
			if !strings.Contains(finalMetrics, want) {
				t.Fatalf("iteration %d: /metrics missing %q:\n%s", i, want, finalMetrics)
			}
		}
		if v, ok := metricValue(finalMetrics, "shard_ring_version"); !ok || v != 3 {
			t.Fatalf("iteration %d: shard_ring_version = %v (ok %v), want 3 after two resizes", i, v, ok)
		}
		if sum, _ := sumMetric(finalMetrics, "shard_reconfig_retired"); sum != 3 {
			t.Fatalf("iteration %d: shard_reconfig_retired = %v, want 3 (shards 2..4)", i, sum)
		}
		if sum, _ := sumMetric(finalMetrics, "shard_reconfig_handoffs"); sum != 3 {
			t.Fatalf("iteration %d: shard_reconfig_handoffs = %v, want 3 journal handoffs", i, sum)
		}

		feed(80, 90)
		if err := stdin.Close(); err != nil {
			t.Fatal(err)
		}
		err = <-exited
		reaped = true
		if err != nil {
			t.Fatalf("iteration %d: front end failed: %v\nstderr:\n%s", i, err, stderr.String())
		}

		// Exactly-once accounting before the byte-level diff, so a
		// lost or duplicated document names itself.
		counts := map[string]int{}
		for _, id := range outputIDs(t, stdout.Bytes()) {
			counts[id]++
		}
		for _, id := range goldenIDs {
			if counts[id] != 1 {
				t.Errorf("iteration %d: document %q emitted %d times, want exactly once", i, id, counts[id])
			}
			delete(counts, id)
		}
		for id, n := range counts {
			t.Errorf("iteration %d: unexpected document %q emitted %d times", i, id, n)
		}
		if t.Failed() {
			t.FailNow()
		}
		if !bytes.Equal(golden, stdout.Bytes()) {
			t.Fatalf("iteration %d (rolled %v, kill landed %v): reshard output differs\n-- golden --\n%s\n-- chaos --\n%s",
				i, rolled, hit, golden, stdout.Bytes())
		}
	}
	t.Logf("reshard chaos: %d/%d kills landed inside a transition", landed, iterations)
	if landed == 0 {
		t.Fatal("no SIGKILL ever landed inside a reconfiguration; the harness is not exercising the rebalance path")
	}

	// The CI workflow points VS2_CHAOS_ARTIFACTS at a directory and
	// uploads whatever lands there: the last iteration's scrape carries
	// the full epoch-stamped shard.reconfig.* story.
	if dir := os.Getenv("VS2_CHAOS_ARTIFACTS"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("artifacts dir: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, "reshard-chaos-metrics.prom"), []byte(finalMetrics), 0o644); err != nil {
			t.Fatalf("artifacts metrics: %v", err)
		}
	}
}
