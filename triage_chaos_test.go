package vs2

// Overload-soak chaos harness for the adaptive fidelity ladder, run
// under -race via `make triage-chaos`. The contract it pins:
//
//   - Under a saturating burst, a ladder-enabled server sheds strictly
//     fewer documents than the same server with the ladder off — the
//     controller trades fidelity for throughput before admission control
//     has to throw ErrOverloaded.
//   - Every degraded answer is honest: cheap-routed documents carry a
//     triage Degradation, and the triage counters account for the split.
//   - Recovery is monotone: once the burst drains, the fidelity level
//     steps back down without ever rising, reaching FULL (level 0).
//   - Pinned off, the ladder is byte-invisible: RenderLine output is
//     identical to a server without the subsystem.
//   - No panics, no leaked goroutines, every shed carries a structured
//     admit error.
//
// The CI workflow points VS2_CHAOS_ARTIFACTS at a directory; the test
// drops before/during/after Prometheus snapshots of the adaptive
// server's registry there for post-mortem inspection.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"vs2/internal/faults"
	"vs2/internal/obs"
	"vs2/internal/segment"
	"vs2/internal/triage"
)

// soakTriagePolicy puts soakDoc's complexity (~0.14) above the level-0
// cheap threshold but inside the widened band from level 1 up, so the
// burst runs the full (slow) pipeline until the controller shifts.
var soakTriagePolicy = triage.Policy{CheapBelow: 0.1, SkipBelow: 0.01}

// slowSoakServer builds the saturation fixture: a 2-worker, 2-slot
// server over a pipeline whose segmenter stalls 100ms per document —
// slow enough that a concurrent burst overwhelms the queue, and
// entirely bypassed by the triage cheap path. The 500ms queue-wait
// budget is sized so the adaptive controller (5ms ticks) has shifted
// long before the blocked admissions give up: the fixture saturates on
// throughput, not on reaction time.
func slowSoakServer(m *Metrics, fidelity FidelityPolicy) *Server {
	task := EventPosterTask()
	p := NewPipeline(Config{
		Task: task,
		Segmenter: &faults.Segmenter{
			Inner:  segment.New(segment.Options{}),
			Inject: faults.Injection{Kind: faults.Delay, Sleep: 100 * time.Millisecond},
		},
	})
	return NewServer(p, ServerConfig{
		Workers:   2,
		Queue:     2,
		QueueWait: 500 * time.Millisecond,
		Metrics:   m,
		Retry:     fastRetry(1),
		Fidelity:  fidelity,
	})
}

// soakBurst slams n concurrent documents into the server and reports
// how many were served and how many shed, failing on any outcome that
// is neither a success nor a structured ErrOverloaded.
func soakBurst(t *testing.T, s *Server, n int) (served, shed int) {
	t.Helper()
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Extract(context.Background(), soakDoc(fmt.Sprintf("triage-burst-%03d", i)))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
			case errors.Is(err, ErrOverloaded):
				var pe *Error
				if !errors.As(err, &pe) || pe.Phase != PhaseAdmit {
					t.Errorf("burst doc %d: shed without structured admit error: %v", i, err)
				}
				shed++
			default:
				t.Errorf("burst doc %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	return served, shed
}

// writeSoakArtifact drops one Prometheus snapshot into the CI artifact
// directory, when one is configured.
func writeSoakArtifact(t *testing.T, name string, m *Metrics) {
	t.Helper()
	dir := os.Getenv("VS2_CHAOS_ARTIFACTS")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("artifacts dir: %v", err)
	}
	var buf bytes.Buffer
	m.Snapshot().WritePrometheus(&buf) //nolint:errcheck
	if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		t.Fatalf("artifact %s: %v", name, err)
	}
}

// labeledSum sums a labeled counter family over all series matching one
// label key/value, e.g. every serve.triage.docs{class="cheap",...}
// regardless of level.
func labeledSum(m *Metrics, base, key, value string) int64 {
	var sum int64
	for name, v := range m.Snapshot().Counters {
		b, labels := obs.SplitName(name)
		if b != base {
			continue
		}
		for _, l := range labels {
			if l.Key == key && l.Value == value {
				sum += v
			}
		}
	}
	return sum
}

func TestTriageChaosOverloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()
	const burstN = 150

	// Phase A control: the same fixture with the ladder off sheds most of
	// the burst — the only defenses are the queue and its 30ms wait.
	mOff := NewMetrics()
	sOff := slowSoakServer(mOff, FidelityPolicy{})
	servedOff, shedOff := soakBurst(t, sOff, burstN)
	t.Logf("ladder off: %d served, %d shed", servedOff, shedOff)
	if shedOff == 0 {
		t.Fatal("control burst shed nothing; the fixture no longer saturates")
	}
	if err := sOff.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown (control): %v", err)
	}

	// Phase A treatment: the adaptive ladder watches queue occupancy and
	// shifts within ~10ms; cheap-routed documents bypass the stalled
	// segmenter, so the queue drains and blocked admissions get slots.
	mAd := NewMetrics()
	sAd := slowSoakServer(mAd, FidelityPolicy{
		Mode:       FidelityAdaptive,
		Levels:     3,
		Triage:     soakTriagePolicy,
		Interval:   5 * time.Millisecond,
		HighLoad:   0.5,
		LowLoad:    0.1,
		RaiseAfter: 1,
		LowerAfter: 2,
		JitterHold: 1,
		Seed:       7,
	})
	writeSoakArtifact(t, "triage-soak-before.prom", mAd)
	servedAd, shedAd := soakBurst(t, sAd, burstN)
	t.Logf("ladder adaptive: %d served, %d shed", servedAd, shedAd)
	writeSoakArtifact(t, "triage-soak-during.prom", mAd)

	if servedAd+shedAd != burstN {
		t.Fatalf("served %d + shed %d != %d", servedAd, shedAd, burstN)
	}
	if shedAd >= shedOff {
		t.Fatalf("adaptive ladder shed %d, control shed %d: degradation did not beat load shedding", shedAd, shedOff)
	}
	snap := mAd.Snapshot()
	if got := snap.Counters[obs.Name("serve.fidelity.shifts", obs.L("direction", "up"))]; got < 1 {
		t.Fatalf("serve.fidelity.shifts{direction=up} = %d, want >= 1: the controller never reacted", got)
	}
	if got := labeledSum(mAd, "serve.triage.docs", "class", "cheap"); got == 0 {
		t.Fatal("no document was cheap-routed during the saturating burst")
	}

	// Phase B: monotone recovery — the burst is drained, load is zero,
	// and the level must step back to FULL without ever rising.
	deadline := time.Now().Add(10 * time.Second)
	last := sAd.FidelityLevel()
	if last == 0 {
		t.Log("level already recovered to 0 at burst end (controller outran the check)")
	}
	for {
		lvl := sAd.FidelityLevel()
		if lvl > last {
			t.Fatalf("fidelity level rose from %d to %d during idle recovery", last, lvl)
		}
		last = lvl
		if lvl == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fidelity level stuck at %d after the burst drained", lvl)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitFor(t, func() bool {
		s := mAd.Snapshot()
		return s.Counters[obs.Name("serve.fidelity.shifts", obs.L("direction", "down"))] >= 1 &&
			s.Gauges["serve.fidelity.level"] == 0
	})
	// A document extracted after recovery runs at full fidelity again.
	res, err := sAd.Extract(context.Background(), soakDoc("triage-recovered"))
	if err != nil {
		t.Fatalf("post-recovery extract: %v", err)
	}
	for _, g := range res.Degraded {
		if g.Phase == PhaseTriage {
			t.Fatalf("post-recovery document still triaged: %+v", res.Degraded)
		}
	}
	writeSoakArtifact(t, "triage-soak-after.prom", mAd)
	if err := sAd.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown (adaptive): %v", err)
	}

	// Phase C: pinned off, the ladder must be byte-invisible. The same
	// corpus through a ladder-off server and a server without the
	// subsystem renders identical lines.
	task := EventPosterTask()
	const identN = 30
	docs := make([]*Document, identN)
	for i := range docs {
		docs[i] = soakDoc(fmt.Sprintf("triage-ident-%02d", i))
	}
	// A generous queue-wait: this phase pins byte identity, not shedding,
	// and a race-detector run must never time out of the queue.
	sPlain := NewServer(NewPipeline(Config{Task: task}), ServerConfig{
		Workers: 2, QueueWait: 10 * time.Minute,
	})
	sLadderOff := NewServer(NewPipeline(Config{Task: task}), ServerConfig{
		Workers:   2,
		QueueWait: 10 * time.Minute,
		Fidelity:  FidelityPolicy{Mode: FidelityOff, Levels: 3, Triage: soakTriagePolicy},
	})
	plainRes := sPlain.ExtractBatch(context.Background(), docs)
	offRes := sLadderOff.ExtractBatch(context.Background(), docs)
	for i := range docs {
		pl, ol := RenderLine(plainRes[i]), RenderLine(offRes[i])
		if !bytes.Equal(pl, ol) {
			t.Fatalf("doc %d: ladder-off output diverged\nplain: %s\noff:   %s", i, pl, ol)
		}
	}
	if err := sPlain.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown (plain): %v", err)
	}
	if err := sLadderOff.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown (ladder-off): %v", err)
	}

	// No goroutine — controller included — may outlive the servers.
	settleGoroutines(t, baseline)
}
