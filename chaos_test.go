package vs2

// Chaos suite: drives ExtractContext through the internal/faults harness
// and proves the containment contract — every injected fault (stall,
// panic, error, corrupted or truncated backend output) yields either a
// degraded *Result or a structured *Error. Never a panic escaping the
// pipeline, never a hang past the watchdog.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"vs2/internal/extract"
	"vs2/internal/faults"
	"vs2/internal/segment"
)

// chaosDoc is a small hand-built event poster: big headline, organizer
// line, time/place block, fine print. Small enough that an uninjected
// pipeline run finishes in milliseconds even under -race, so the phase
// budgets below only trip on injected stalls.
func chaosDoc() *Document {
	d := &Document{ID: "chaos-poster", Width: 400, Height: 600, Background: White}
	id := 0
	add := func(x, y, fontH float64, color RGB, words ...string) {
		cx := x
		for _, w := range words {
			width := float64(len(w)) * fontH * 0.55
			d.Elements = append(d.Elements, Element{
				ID: id, Kind: TextElement, Text: w,
				Box:      Rect{X: cx, Y: y, W: width, H: fontH},
				Color:    color,
				FontSize: fontH, Line: int(y),
			})
			id++
			cx += width + fontH*0.5
		}
	}
	add(30, 30, 30, Black, "Harvest", "Moon", "Festival")
	add(30, 80, 16, Red, "presented", "by", "Elm", "Street", "Arts", "Council")
	add(30, 220, 14, Black, "Friday", "October", "3,", "6:00", "PM")
	add(30, 250, 14, Black, "12", "Orchard", "Lane,", "Dayton,", "OH")
	add(30, 520, 9, Gray, "printing", "donated", "by", "Sam", "Lee")
	return d
}

// budgetsFor bounds only the site carrying a Delay injection: the stall
// happens before any real work, so a tight budget trips fast without ever
// racing legitimate computation. Every other phase stays unbounded —
// under -race even this small poster takes whole seconds to segment, and
// a uniform budget would degrade uninjected runs spuriously.
func budgetsFor(site string, kind faults.Kind) Budgets {
	if kind != faults.Delay {
		return Budgets{}
	}
	switch site {
	case "segment":
		return Budgets{Segment: 250 * time.Millisecond}
	case "search":
		return Budgets{Search: 250 * time.Millisecond}
	default:
		return Budgets{Disambiguate: 250 * time.Millisecond}
	}
}

// chaosPipeline wires the fault harness around the default backends.
func chaosPipeline(seg, search, sel faults.Injection, budgets Budgets) *Pipeline {
	task := EventPosterTask()
	return NewPipeline(Config{
		Task:    task,
		Budgets: budgets,
		Segmenter: &faults.Segmenter{
			Inner:  segment.New(segment.Options{}),
			Inject: seg,
		},
		Extractor: &faults.Extractor{
			Inner:  extract.New(extract.Options{Weights: task.Weights}),
			Search: search,
			Select: sel,
		},
	})
}

// runChaos executes one extraction under a watchdog: a hang past the
// deadline is a containment failure, not a slow test.
func runChaos(t *testing.T, ctx context.Context, p *Pipeline, d *Document) (*Result, error) {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := p.ExtractContext(ctx, d)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline hung past the 30s watchdog")
		return nil, nil
	}
}

func hasDegradation(res *Result, phase Phase, fallback string) bool {
	for _, g := range res.Degraded {
		if g.Phase == phase && g.Fallback == fallback {
			return true
		}
	}
	return false
}

// TestChaosMatrix crosses every injection site with every fault kind and
// asserts the containment contract for each cell. Site-specific outcome
// guarantees get their own targeted tests below; the matrix only demands
// "degraded result or structured error".
func TestChaosMatrix(t *testing.T) {
	d := chaosDoc()
	kinds := []faults.Kind{faults.None, faults.Delay, faults.Panic, faults.Error, faults.Corrupt, faults.Truncate}
	sites := []string{"segment", "search", "select"}
	for _, site := range sites {
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s/%s", site, kind), func(t *testing.T) {
				inj := faults.Injection{Kind: kind, Sleep: 5 * time.Second, Seed: 11}
				var seg, search, sel faults.Injection
				switch site {
				case "segment":
					seg = inj
				case "search":
					search = inj
				default:
					sel = inj
				}
				p := chaosPipeline(seg, search, sel, budgetsFor(site, kind))
				res, err := runChaos(t, context.Background(), p, d)
				if err != nil {
					var pe *Error
					if !errors.As(err, &pe) {
						t.Fatalf("error is not a *vs2.Error: %T %v", err, err)
					}
					return
				}
				if res == nil {
					t.Fatal("nil result with nil error")
				}
				if kind == faults.None && res.IsDegraded() {
					t.Fatalf("uninjected run degraded: %+v", res.Degraded)
				}
			})
		}
	}
}

// Segmentation faults of every kind must degrade to the linear baseline —
// extraction still runs and still finds the headline entities.
func TestSegmentationFaultsDegradeToLinear(t *testing.T) {
	d := chaosDoc()
	for _, kind := range []faults.Kind{faults.Delay, faults.Panic, faults.Error} {
		t.Run(kind.String(), func(t *testing.T) {
			p := chaosPipeline(faults.Injection{Kind: kind, Sleep: 5 * time.Second}, faults.Injection{}, faults.Injection{}, budgetsFor("segment", kind))
			res, err := runChaos(t, context.Background(), p, d)
			if err != nil {
				t.Fatalf("ExtractContext: %v", err)
			}
			if !hasDegradation(res, PhaseSegment, "linear-segmentation") {
				t.Fatalf("degradations = %+v, want linear-segmentation", res.Degraded)
			}
			if res.Tree == nil || len(res.Blocks) == 0 {
				t.Fatal("degraded run returned no layout")
			}
			if len(res.Entities) == 0 {
				t.Fatal("degraded run extracted nothing from a matchable poster")
			}
		})
	}
}

// A segmenter that returns damaged trees (NaN geometry, dangling indices,
// dropped elements) must be sanitized: the reported blocks are all valid
// and every element is covered.
func TestCorruptSegmenterOutputSanitized(t *testing.T) {
	d := chaosDoc()
	for _, kind := range []faults.Kind{faults.Corrupt, faults.Truncate} {
		t.Run(kind.String(), func(t *testing.T) {
			p := chaosPipeline(faults.Injection{Kind: kind, Seed: 23}, faults.Injection{}, faults.Injection{}, Budgets{})
			res, err := runChaos(t, context.Background(), p, d)
			if err != nil {
				t.Fatalf("ExtractContext: %v", err)
			}
			if !hasDegradation(res, PhaseSegment, "sanitized-blocks") {
				t.Fatalf("degradations = %+v, want sanitized-blocks", res.Degraded)
			}
			covered := make([]bool, len(d.Elements))
			for _, b := range res.Blocks {
				if math.IsNaN(b.Box.X) || math.IsInf(b.Box.W, 0) {
					t.Fatalf("sanitized block kept non-finite box %+v", b.Box)
				}
				for _, id := range b.Elements {
					if id < 0 || id >= len(d.Elements) {
						t.Fatalf("sanitized block kept out-of-range element %d", id)
					}
					covered[id] = true
				}
			}
			for i, c := range covered {
				if !c {
					t.Fatalf("element %d lost during sanitation", i)
				}
			}
		})
	}
}

// A search stall must keep the partial candidates found before the budget
// expired rather than discarding the phase.
func TestSearchTimeoutKeepsPartialResults(t *testing.T) {
	d := chaosDoc()
	p := chaosPipeline(faults.Injection{}, faults.Injection{Kind: faults.Delay, Sleep: 5 * time.Second}, faults.Injection{}, budgetsFor("search", faults.Delay))
	res, err := runChaos(t, context.Background(), p, d)
	if err != nil {
		t.Fatalf("ExtractContext: %v", err)
	}
	if !hasDegradation(res, PhaseSearch, "partial-search") {
		t.Fatalf("degradations = %+v, want partial-search", res.Degraded)
	}
}

// Search panics and hard errors have no safe fallback — the contract is a
// structured error naming the phase and cause.
func TestSearchFailureReturnsStructuredError(t *testing.T) {
	d := chaosDoc()
	cases := []struct {
		kind faults.Kind
		want error
	}{
		{faults.Panic, ErrPanic},
		{faults.Error, faults.ErrInjected},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			p := chaosPipeline(faults.Injection{}, faults.Injection{Kind: tc.kind}, faults.Injection{}, Budgets{})
			_, err := runChaos(t, context.Background(), p, d)
			var pe *Error
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *vs2.Error", err)
			}
			if pe.Phase != PhaseSearch {
				t.Fatalf("phase = %s, want %s", pe.Phase, PhaseSearch)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want cause %v", err, tc.want)
			}
		})
	}
}

// Disambiguation faults of every kind fall back to first-match selection,
// which must agree with the DisableDisambiguation (ablation A3) pipeline
// on the same document.
func TestDisambiguationFaultsFallBackToFirstMatch(t *testing.T) {
	d := chaosDoc()
	want := map[string]string{}
	for _, e := range NewPipeline(Config{Task: EventPosterTask(), DisableDisambiguation: true}).Extract(d).Entities {
		want[e.Entity] = e.Text
	}
	if len(want) == 0 {
		t.Fatal("reference pipeline extracted nothing; test document too weak")
	}
	for _, kind := range []faults.Kind{faults.Delay, faults.Panic, faults.Error} {
		t.Run(kind.String(), func(t *testing.T) {
			p := chaosPipeline(faults.Injection{}, faults.Injection{}, faults.Injection{Kind: kind, Sleep: 5 * time.Second}, budgetsFor("select", kind))
			res, err := runChaos(t, context.Background(), p, d)
			if err != nil {
				t.Fatalf("ExtractContext: %v", err)
			}
			if !hasDegradation(res, PhaseDisambiguate, "first-match") {
				t.Fatalf("degradations = %+v, want first-match", res.Degraded)
			}
			got := map[string]string{}
			for _, e := range res.Entities {
				got[e.Entity] = e.Text
			}
			for entity, text := range want {
				if got[entity] != text {
					t.Errorf("%s = %q, want first-match %q", entity, got[entity], text)
				}
			}
		})
	}
}

// Candidates corrupted after the search phase sabotage first-match too
// (their block grounding is gone); the pipeline must surface a structured
// error rather than crash in the fallback.
func TestCorruptCandidatesContained(t *testing.T) {
	d := chaosDoc()
	p := chaosPipeline(faults.Injection{}, faults.Injection{Kind: faults.Corrupt, Seed: 5}, faults.Injection{}, Budgets{})
	res, err := runChaos(t, context.Background(), p, d)
	if err == nil {
		// Acceptable only if selection somehow survived the damage.
		if res == nil {
			t.Fatal("nil result with nil error")
		}
		return
	}
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *vs2.Error", err)
	}
	if pe.Phase != PhaseDisambiguate {
		t.Fatalf("phase = %s, want %s", pe.Phase, PhaseDisambiguate)
	}
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic cause", err)
	}
}

// Cancellation of the caller's own context always aborts with a
// structured error — degradation is for phase budgets, not for a caller
// that walked away.
func TestParentCancellationAborts(t *testing.T) {
	d := chaosDoc()

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		p := chaosPipeline(faults.Injection{}, faults.Injection{}, faults.Injection{}, Budgets{})
		_, err := p.ExtractContext(ctx, d)
		var pe *Error
		if !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want *vs2.Error wrapping context.Canceled", err)
		}
	})

	t.Run("mid-segmentation-deadline", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		p := chaosPipeline(faults.Injection{Kind: faults.Delay, Sleep: 10 * time.Second}, faults.Injection{}, faults.Injection{}, Budgets{})
		_, err := runChaos(t, ctx, p, d)
		var pe *Error
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want *vs2.Error", err)
		}
		if pe.Phase != PhaseSegment {
			t.Fatalf("phase = %s, want %s", pe.Phase, PhaseSegment)
		}
		if !errors.Is(err, context.DeadlineExceeded) || !pe.Timeout() {
			t.Fatalf("err = %v, want deadline-exceeded timeout", err)
		}
		if errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("caller deadline misreported as phase budget: %v", err)
		}
	})
}

// Input guards: rejected documents name the validation phase and the
// specific sentinel cause.
func TestValidationRejectsStructured(t *testing.T) {
	base := chaosDoc()
	cases := []struct {
		name string
		doc  *Document
		want error
	}{
		{"nil", nil, ErrInvalidDocument},
		{"empty", &Document{ID: "e", Width: 100, Height: 100}, ErrEmptyDocument},
		{"nan-width", func() *Document { d := *base; d.Width = math.NaN(); return &d }(), ErrNonFinite},
		{"huge-page", func() *Document { d := *base; d.Width = 1e9; return &d }(), ErrPageTooLarge},
	}
	p := chaosPipeline(faults.Injection{}, faults.Injection{}, faults.Injection{}, Budgets{})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := p.ExtractContext(context.Background(), tc.doc)
			var pe *Error
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *vs2.Error", err)
			}
			if pe.Phase != PhaseValidate {
				t.Fatalf("phase = %s, want %s", pe.Phase, PhaseValidate)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want cause %v", err, tc.want)
			}
			if tc.doc != nil && !errors.Is(err, ErrInvalidDocument) {
				t.Fatalf("err = %v, want ErrInvalidDocument in chain", err)
			}
		})
	}
}

// The uninjected ExtractContext must agree with the historical Extract
// path — the robustness layer is a wrapper, not a different pipeline.
func TestExtractContextMatchesExtract(t *testing.T) {
	d := chaosDoc()
	p := NewPipeline(Config{Task: EventPosterTask()})
	res, err := p.ExtractContext(context.Background(), d)
	if err != nil {
		t.Fatalf("ExtractContext: %v", err)
	}
	if res.IsDegraded() {
		t.Fatalf("clean run degraded: %+v", res.Degraded)
	}
	legacy := p.Extract(d)
	if fmt.Sprint(res.Entities) != fmt.Sprint(legacy.Entities) {
		t.Fatalf("ExtractContext entities %v != Extract entities %v", res.Entities, legacy.Entities)
	}
}
