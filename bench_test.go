package vs2

// Benchmark harness: one benchmark per evaluation table of the paper
// (Tables 5–9, Section 6), each reporting the headline precision/recall
// figures as custom benchmark metrics, plus micro-benchmarks of the
// pipeline stages. Regenerate everything with
//
//	go test -bench=. -benchmem
//
// The per-table corpora are kept small so the full suite completes in
// minutes; use cmd/vs2bench for larger, paper-scale runs.

import (
	"fmt"
	"strings"
	"testing"
	"unicode"

	"vs2/internal/eval"
	"vs2/internal/segment"
)

// metricKey builds a ReportMetric unit name; units must not contain
// whitespace ("Apostolova et al." would panic the testing package) or
// colons (the benchmark output format uses ":" as a field separator).
// All Unicode whitespace counts, not just ASCII spaces — method names
// sourced from paper citations have carried NBSPs.
func metricKey(parts ...string) string {
	k := strings.Join(parts, "/")
	return strings.Map(func(r rune) rune {
		if unicode.IsSpace(r) || r == ':' {
			return '_'
		}
		return r
	}, k)
}

// TestMetricKey pins the sanitization contract: no whitespace of any
// kind and no colons survive into a ReportMetric unit name.
func TestMetricKey(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Apostolova et al.", "Apostolova_et_al."},
		{"tab\tsep", "tab_sep"},
		{"line\nbreak", "line_break"},
		{"nbsp\u00a0gap", "nbsp_gap"},
		{"ratio:1", "ratio_1"},
		{"clean-name", "clean-name"},
	}
	for _, c := range cases {
		if got := metricKey(c.in); got != c.want {
			t.Errorf("metricKey(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := metricKey("D2", "VS2: full"); got != "D2/VS2__full" {
		t.Errorf("metricKey join = %q, want D2/VS2__full", got)
	}
	for _, r := range metricKey("a b\tc d:e") {
		if unicode.IsSpace(r) || r == ':' {
			t.Errorf("sanitized key still contains %q", r)
		}
	}
}

const (
	benchN    = 16
	benchSeed = 1
)

// BenchmarkTable5 regenerates the segmentation comparison (Table 5):
// precision/recall of the six page segmenters on D1/D2/D3.
func BenchmarkTable5(b *testing.B) {
	var results []eval.MethodResult
	for i := 0; i < b.N; i++ {
		results = eval.RunTable5(eval.Options{N: benchN, Seed: benchSeed})
	}
	b.StopTimer()
	for _, r := range results {
		if !r.Applicable {
			continue
		}
		key := metricKey(r.Dataset, r.Method)
		b.ReportMetric(r.PR.Precision()*100, key+"-P%")
		b.ReportMetric(r.PR.Recall()*100, key+"-R%")
	}
	b.Log("\n" + eval.FormatTable5(results).String())
}

// BenchmarkTable6 regenerates the per-entity end-to-end evaluation on the
// event-posters dataset (Table 6), including the ΔF1 column against the
// text-only baseline.
func BenchmarkTable6(b *testing.B) {
	benchPerEntity(b, "d2", "Table 6: End-to-end evaluation of VS2 on D2")
}

// BenchmarkTable8 regenerates the per-entity evaluation on the real-estate
// dataset (Table 8).
func BenchmarkTable8(b *testing.B) {
	benchPerEntity(b, "d3", "Table 8: End-to-end evaluation of VS2 on D3")
}

func benchPerEntity(b *testing.B, ds, title string) {
	var results []eval.EntityResult
	for i := 0; i < b.N; i++ {
		results = eval.RunPerEntity(ds, eval.Options{N: benchN, Seed: benchSeed})
	}
	b.StopTimer()
	for _, r := range results {
		b.ReportMetric(r.VS2.Precision()*100, r.Entity+"-P%")
		b.ReportMetric(r.VS2.Recall()*100, r.Entity+"-R%")
		b.ReportMetric(r.DeltaF1, r.Entity+"-dF1")
	}
	b.Log("\n" + eval.FormatPerEntity(title, results).String())
}

// BenchmarkTable7 regenerates the end-to-end comparison against the five
// prior methods (Table 7).
func BenchmarkTable7(b *testing.B) {
	var results []eval.MethodResult
	for i := 0; i < b.N; i++ {
		results = eval.RunTable7(eval.Options{N: benchN, Seed: benchSeed})
	}
	b.StopTimer()
	for _, r := range results {
		if !r.Applicable {
			continue
		}
		key := metricKey(r.Dataset, r.Method)
		b.ReportMetric(r.PR.Precision()*100, key+"-P%")
		b.ReportMetric(r.PR.Recall()*100, key+"-R%")
	}
	b.Log("\n" + eval.FormatTable7(results).String())
}

// BenchmarkTable9 regenerates the ablation study (Table 9): the F1 the
// full system loses when each component is removed.
func BenchmarkTable9(b *testing.B) {
	var results []eval.AblationResult
	for i := 0; i < b.N; i++ {
		results = eval.RunTable9(eval.Options{N: benchN / 2, Seed: benchSeed})
	}
	b.StopTimer()
	for _, r := range results {
		for ds, delta := range r.DeltaF1 {
			b.ReportMetric(delta, metricKey(r.Scenario[:2], ds)+"-dF1")
		}
	}
	b.Log("\n" + eval.FormatTable9(results).String())
}

// BenchmarkSignificance runs the Section 6.4 paired t-test on D2.
func BenchmarkSignificance(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		res, err := eval.SignificanceVS2VsTextOnly("d2", eval.Options{N: benchN, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		p = res.P
	}
	b.ReportMetric(p, "p-value")
}

// --- Stage micro-benchmarks -------------------------------------------------

// BenchmarkSegmentPoster measures VS2-Segment on one event poster.
func BenchmarkSegmentPoster(b *testing.B) {
	d := GenerateEventPosters(1, 5)[0].Doc
	s := segment.New(segment.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Blocks(d)
	}
}

// BenchmarkSegmentTaxForm measures VS2-Segment on one dense tax form
// (~300 elements).
func BenchmarkSegmentTaxForm(b *testing.B) {
	d := GenerateTaxForms(1, 5)[0].Doc
	s := segment.New(segment.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Blocks(d)
	}
}

// BenchmarkSegmentConfigs measures the three segmentation paths — the
// preserved seed implementation, the optimised sequential recursion and
// the branch-parallel recursion — on the same tax-form corpus
// cmd/vs2bench -segbench uses for the committed regression baseline.
// Run with -benchmem to see the allocation reduction from the pooled
// reach tables, feature buffers and the centroid cache.
func BenchmarkSegmentConfigs(b *testing.B) {
	labeled := GenerateTaxForms(2, 5)
	docs := make([]*Document, len(labeled))
	for i, l := range labeled {
		docs[i] = l.Doc
	}
	configs := []struct {
		name string
		s    *segment.Segmenter
	}{
		{"reference", segment.NewReference(segment.Options{})},
		{"sequential", segment.New(segment.Options{Parallel: 1})},
		{"parallel", segment.New(segment.Options{Parallel: 8})},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, d := range docs {
					c.s.Blocks(d)
				}
			}
		})
	}
}

// BenchmarkExtractPoster measures the full pipeline (segment + select) on
// one poster.
func BenchmarkExtractPoster(b *testing.B) {
	d := GenerateEventPosters(1, 5)[0].Doc
	p := NewPipeline(Config{Task: EventPosterTask()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Extract(d)
	}
}

// BenchmarkExtractFlyer measures the full pipeline on one flyer.
func BenchmarkExtractFlyer(b *testing.B) {
	d := GenerateRealEstateFlyers(1, 5)[0].Doc
	p := NewPipeline(Config{Task: RealEstateTask()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Extract(d)
	}
}

// BenchmarkOCRChannel measures the mobile-capture noise channel.
func BenchmarkOCRChannel(b *testing.B) {
	l := GenerateEventPosters(1, 5)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OCRNoise(l, int64(i))
	}
}

// BenchmarkPatternLearning measures distant-supervision pattern mining
// from the D3 holdout corpus.
func BenchmarkPatternLearning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		LearnPatterns("real-estate", benchSeed)
	}
}

// BenchmarkEmbedderTraining measures PPMI-SVD embedding training on a
// small corpus.
func BenchmarkEmbedderTraining(b *testing.B) {
	var corpus []string
	for _, l := range GenerateEventPosters(20, 5) {
		corpus = append(corpus, l.Doc.Transcript(nil))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainEmbedder(corpus, 16)
	}
}

// --- Extension experiments (DESIGN.md §5 design-choice ablations) -----------

// BenchmarkCutModelAblation compares drifting-seam cuts against straight
// projection cuts (design choice 1 of DESIGN.md).
func BenchmarkCutModelAblation(b *testing.B) {
	var results []eval.CutModelResult
	for i := 0; i < b.N; i++ {
		results = eval.RunCutModelAblation(eval.Options{N: benchN / 2, Seed: benchSeed})
	}
	b.StopTimer()
	for _, r := range results {
		b.ReportMetric(r.Seam.F1()*100, fmt.Sprintf("rot%02.0f-seam-F1", r.Degrees))
		b.ReportMetric(r.Straight.F1()*100, fmt.Sprintf("rot%02.0f-straight-F1", r.Degrees))
	}
}

// BenchmarkWeightProfiles sweeps the Eq. 2 weight profiles (design choice 6).
func BenchmarkWeightProfiles(b *testing.B) {
	var results []eval.WeightProfileResult
	for i := 0; i < b.N; i++ {
		results = eval.RunWeightProfiles(eval.Options{N: benchN / 2, Seed: benchSeed})
	}
	b.StopTimer()
	for _, r := range results {
		for name, f1 := range r.F1 {
			b.ReportMetric(f1*100, r.Dataset+"-"+name+"-F1")
		}
	}
}

// BenchmarkNoiseSweep measures robustness to transcription noise on D2.
func BenchmarkNoiseSweep(b *testing.B) {
	var points []eval.NoisePoint
	for i := 0; i < b.N; i++ {
		points = eval.RunNoiseSweep(eval.Options{N: benchN / 2, Seed: benchSeed})
	}
	b.StopTimer()
	for _, p := range points {
		b.ReportMetric(p.VS2.F1()*100, p.Label+"-vs2-F1")
		b.ReportMetric(p.Text.F1()*100, p.Label+"-text-F1")
	}
}

// BenchmarkRotationSweep checks the "robust to rotation up to 45°" claim
// of Section 5.1.2.
func BenchmarkRotationSweep(b *testing.B) {
	var points []eval.RotationPoint
	for i := 0; i < b.N; i++ {
		points = eval.RunRotationSweep(eval.Options{N: benchN / 2, Seed: benchSeed})
	}
	b.StopTimer()
	for _, p := range points {
		b.ReportMetric(p.PR.F1()*100, fmt.Sprintf("rot%02.0f-F1", p.Degrees))
	}
}

// BenchmarkFitWeights exercises the Section 7 future-work extension:
// learning the Eq. 2 weights from labelled data by simplex grid search.
func BenchmarkFitWeights(b *testing.B) {
	var f1 float64
	for i := 0; i < b.N; i++ {
		_, f1 = eval.FitWeights("d2", eval.Options{N: benchN / 2, Seed: benchSeed})
	}
	b.ReportMetric(f1*100, "fitted-F1")
}
