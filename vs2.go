// Package vs2 is a from-scratch Go implementation of VS2, the generalized
// information-extraction system for heterogeneous visually rich documents
// of Sarkhel & Nandi, "Visual Segmentation for Information Extraction from
// Heterogeneous Visually Rich Documents", SIGMOD 2019.
//
// VS2 extracts named entities from documents whose meaning depends on
// layout as much as on text — posters, flyers, forms — without any prior
// knowledge of the document's template or format. It operates in two
// phases:
//
//  1. VS2-Segment decomposes the page into logical blocks: visually
//     isolated, semantically coherent areas found by whitespace-seam
//     analysis, visual-feature clustering and semantic merging.
//  2. VS2-Select searches lexico-syntactic patterns for each entity within
//     the blocks and resolves multi-match conflicts by minimising a
//     multimodal distance to the document's visually salient interest
//     points.
//
// # Quick start
//
//	d := ...                       // *vs2.Document (build one or decode JSON)
//	p := vs2.NewPipeline(vs2.Config{Task: vs2.EventPosterTask()})
//	result := p.Extract(d)
//	for _, e := range result.Entities {
//	    fmt.Printf("%s = %q\n", e.Entity, e.Text)
//	}
//
// The packages under internal/ implement every substrate (document model,
// rasteriser, NLP annotators, embeddings, subtree mining, OCR simulation,
// dataset generators, baselines, evaluation harness); this package is the
// stable public surface.
package vs2

import (
	"context"

	"vs2/internal/baselines"
	"vs2/internal/colorlab"
	"vs2/internal/datasets"
	"vs2/internal/doc"
	"vs2/internal/embed"
	"vs2/internal/extract"
	"vs2/internal/geom"
	"vs2/internal/holdout"
	"vs2/internal/obs"
	"vs2/internal/ocr"
	"vs2/internal/pattern"
	"vs2/internal/segment"
	"vs2/internal/template"
)

// Re-exported document-model types: the JSON document format is the
// interchange unit of the whole system.
type (
	// Document is a visually rich document: a page of positioned atomic
	// text/image elements.
	Document = doc.Document
	// Element is one atomic element (Section 4.1 of the paper).
	Element = doc.Element
	// Node is a layout-tree node; leaves are logical blocks.
	Node = doc.Node
	// Labeled couples a document with ground-truth annotations.
	Labeled = doc.Labeled
	// GroundTruth carries the annotated entities of a document.
	GroundTruth = doc.GroundTruth
	// Annotation is one labelled entity occurrence.
	Annotation = doc.Annotation
	// Rect is an axis-aligned rectangle in page coordinates.
	Rect = geom.Rect

	// PatternSet is the disjunction of patterns defined for one entity.
	PatternSet = pattern.Set
	// Extraction is one extracted named entity with its visual grounding.
	Extraction = extract.Extraction
	// Candidate is one pattern match with its visual grounding, the unit
	// the search phase hands to the selection phase.
	Candidate = extract.Candidate
	// Weights are the Eq. 2 multimodal-distance coefficients.
	Weights = extract.Weights
)

// Element kinds and capture modes.
const (
	TextElement  = doc.TextElement
	ImageElement = doc.ImageElement

	CaptureDigital = doc.CaptureDigital
	CaptureMobile  = doc.CaptureMobile
	CaptureScan    = doc.CaptureScan
)

// Eq. 2 weight profiles per Section 5.3.2 of the paper.
var (
	// BalancedWeights suits corpora that are neither extremely ornate nor
	// extremely verbose.
	BalancedWeights = extract.Balanced
	// VisuallyOrnateWeights suits sparse, decorated documents (posters).
	VisuallyOrnateWeights = extract.VisuallyOrnate
	// VerboseWeights suits text-heavy documents.
	VerboseWeights = extract.Verbose
)

// DecodeDocument parses a document from its JSON encoding.
func DecodeDocument(data []byte) (*Document, error) { return doc.Decode(data) }

// EncodeDocument serialises a document to indented JSON.
func EncodeDocument(d *Document) ([]byte, error) { return doc.Encode(d) }

// Task describes one information-extraction task: the named entities to
// extract (with their lexico-syntactic patterns) and the weight profile of
// the corpus.
type Task struct {
	// Name identifies the task.
	Name string
	// Sets are the per-entity pattern sets.
	Sets []*PatternSet
	// Weights is the Eq. 2 profile; zero value selects Balanced.
	Weights Weights
}

// EventPosterTask returns the Table 3 task: Event Title, Place, Time,
// Organizer and Description from event posters.
func EventPosterTask() Task {
	return Task{Name: "event-posters", Sets: pattern.EventPatterns(), Weights: extract.VisuallyOrnate}
}

// RealEstateTask returns the Table 4 task: Broker Name/Phone/Email and
// Property Address/Size/Description from real-estate flyers.
func RealEstateTask() Task {
	return Task{Name: "real-estate", Sets: pattern.RealEstatePatterns(), Weights: extract.Balanced}
}

// FormFieldTask returns a D1-style task: exact-match extraction of form
// fields. fields maps each entity key to its printed descriptor strings.
func FormFieldTask(fields map[string][]string) Task {
	return Task{Name: "form-fields", Sets: pattern.TaxPatterns(fields), Weights: extract.Balanced}
}

// NISTTaxTask returns the built-in synthetic NIST-SD6-style form-field
// inventory (20 form faces, ~1360 fields).
func NISTTaxTask() Task { return FormFieldTask(datasets.D1Fields()) }

// Entity keys of the built-in tasks.
const (
	EventTitle       = pattern.EventTitle
	EventPlace       = pattern.EventPlace
	EventTime        = pattern.EventTime
	EventOrganizer   = pattern.EventOrganizer
	EventDescription = pattern.EventDescription

	BrokerName          = pattern.BrokerName
	BrokerPhone         = pattern.BrokerPhone
	BrokerEmail         = pattern.BrokerEmail
	PropertyAddress     = pattern.PropertyAddr
	PropertySize        = pattern.PropertySize
	PropertyDescription = pattern.PropertyDesc
)

// Observability surface: a Trace records the span tree of one run (attach
// it to the context with WithTrace), a Metrics registry aggregates
// counters/gauges/histograms across runs (set Config.Metrics). Both are
// implemented by internal/obs; nil values disable them at near-zero cost.
type (
	// Trace is the span tree of one pipeline run.
	Trace = obs.Trace
	// Span is one timed node of a trace.
	Span = obs.Span
	// SpanSnapshot is the immutable JSON form of a span tree, the wire
	// format of `vs2 -trace`.
	SpanSnapshot = obs.SpanSnapshot
	// Metrics aggregates pipeline counters, gauges and histograms; safe
	// for concurrent use across pipelines and goroutines.
	Metrics = obs.Registry
	// MetricsSnapshot is the immutable JSON form of a Metrics registry.
	MetricsSnapshot = obs.Snapshot
)

// NewTrace starts a trace whose root span carries the given name.
func NewTrace(name string) *Trace { return obs.New(name) }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// WithTrace attaches a trace to a context; ExtractContext records its
// span tree beneath the trace root.
func WithTrace(ctx context.Context, t *Trace) context.Context { return obs.WithTrace(ctx, t) }

// Config tunes a Pipeline.
type Config struct {
	// Task selects the entities and patterns; required.
	Task Task
	// Segment tunes VS2-Segment (zero value = paper defaults).
	Segment segment.Options
	// Budgets bounds each phase of ExtractContext with a wall-clock
	// allowance; zero fields are unbounded. See Budgets for the fallback
	// taken when a phase overruns.
	Budgets Budgets
	// Metrics, when non-nil, receives per-phase latencies and run/block/
	// candidate/degradation counters from every ExtractContext call. One
	// registry may serve many pipelines.
	Metrics *Metrics
	// Explain attaches a Report to each Result explaining every
	// extraction: block path in the layout tree, pattern matched, and the
	// Eq. 2 disambiguation cost breakdown per candidate.
	Explain bool
	// DisableDisambiguation replaces Eq. 2 conflict resolution with
	// first-match (ablation A3).
	DisableDisambiguation bool
	// LeskDisambiguation replaces Eq. 2 with the text-only Lesk strategy
	// (ablation A4).
	LeskDisambiguation bool
	// Templates, when non-nil, short-circuits VS2-Segment for documents
	// whose quantized element geometry matches a memoized layout: the
	// cached tree structure is remapped onto the new document and the
	// pipeline jumps straight to search-and-select. Build one with
	// NewTemplateCache; one cache may serve many pipelines. Nil disables
	// template reuse (every document pays full segmentation).
	Templates *TemplateCache
	// Segmenter overrides the built-in VS2-Segment backend (nil = default).
	// Primarily for the internal fault-injection harness and for callers
	// bringing their own layout analysis.
	Segmenter SegmentBackend
	// Extractor overrides the built-in VS2-Select backend (nil = default).
	Extractor ExtractBackend
}

// Pipeline is the end-to-end VS2 system: segmentation plus extraction.
type Pipeline struct {
	cfg       Config
	segmenter SegmentBackend
	extractor ExtractBackend
}

// NewPipeline builds a Pipeline from the configuration.
func NewPipeline(cfg Config) *Pipeline {
	opts := extract.Options{Weights: cfg.Task.Weights}
	switch {
	case cfg.DisableDisambiguation:
		opts.Disambiguation = extract.None
	case cfg.LeskDisambiguation:
		opts.Disambiguation = extract.Lesk
	}
	p := &Pipeline{cfg: cfg, segmenter: cfg.Segmenter, extractor: cfg.Extractor}
	if p.segmenter == nil {
		p.segmenter = segment.New(cfg.Segment)
	}
	if p.extractor == nil {
		p.extractor = extract.New(opts)
	}
	return p
}

// Result is the output of one extraction run.
type Result struct {
	// Entities holds one extraction per entity that matched.
	Entities []Extraction
	// Blocks are the logical blocks the document was decomposed into.
	Blocks []*Node
	// Tree is the full layout tree (Blocks are its leaves).
	Tree *Node
	// Degraded records every fallback ExtractContext took instead of
	// failing; empty for a run that completed on the primary strategies.
	Degraded []Degradation
	// Report explains each extraction when Config.Explain is set; nil
	// otherwise.
	Report *Report
}

// Segment decomposes the document into its layout tree without running
// extraction.
func (p *Pipeline) Segment(d *Document) *Node {
	tree, err := p.segmenter.SegmentContext(context.Background(), d)
	if err != nil || tree == nil {
		return p.linearTree(d)
	}
	return tree
}

// Extract runs the full two-phase pipeline on a document. It wraps
// ExtractContext with no deadline; use ExtractContext directly for
// cancellation, budgets and structured errors. Extract keeps its
// historical never-fails contract: documents the robustness layer rejects
// run the raw unguarded path exactly as before.
func (p *Pipeline) Extract(d *Document) *Result {
	if res, err := p.ExtractContext(context.Background(), d); err == nil {
		return res
	}
	tree := p.Segment(d)
	blocks := tree.Leaves()
	cands, _ := p.extractor.SearchContext(context.Background(), d, blocks, p.cfg.Task.Sets)
	entities, _ := p.extractor.SelectContext(context.Background(), d, blocks, cands, p.cfg.Task.Sets)
	return &Result{Entities: entities, Blocks: blocks, Tree: tree}
}

// InterestPoints returns the document's interest points — the logical
// blocks on the first Pareto front of the Section 5.3.1 objectives, which
// anchor the multimodal disambiguation (the red boxes of the paper's
// Fig. 6).
func (p *Pipeline) InterestPoints(d *Document) []*Node {
	blocks := p.Segment(d).Leaves()
	var out []*Node
	for _, ip := range extract.InterestPoints(d, blocks, NewLexiconEmbedder()) {
		out = append(out, ip.Block)
	}
	return out
}

// Candidates returns every pattern match per entity, ranked best-first —
// the raw search phase, before the final per-entity selection.
func (p *Pipeline) Candidates(d *Document) map[string][]Extraction {
	blocks := p.Segment(d).Leaves()
	ex, ok := p.extractor.(*extract.Extractor)
	if !ok {
		ex = extract.New(extract.Options{Weights: p.cfg.Task.Weights})
	}
	return ex.ExtractAll(d, blocks, p.cfg.Task.Sets)
}

// Generators: the synthetic corpora of the evaluation, exposed so examples
// and downstream users can produce workloads.

// GenerateTaxForms produces n D1-style scanned tax forms with ground truth.
func GenerateTaxForms(n int, seed int64) []Labeled {
	return datasets.GenerateD1(datasets.Options{N: n, Seed: seed})
}

// GenerateEventPosters produces n D2-style event posters with ground truth.
func GenerateEventPosters(n int, seed int64) []Labeled {
	return datasets.GenerateD2(datasets.Options{N: n, Seed: seed})
}

// GenerateRealEstateFlyers produces n D3-style flyers with ground truth.
func GenerateRealEstateFlyers(n int, seed int64) []Labeled {
	return datasets.GenerateD3(datasets.Options{N: n, Seed: seed})
}

// OCRNoise passes a labelled document through the OCR channel appropriate
// to its capture mode, returning the observed (noisy) document; the ground
// truth is transformed consistently (rotation applies to both).
func OCRNoise(l Labeled, seed int64) Labeled {
	noise := ocr.ForCapture(l.Doc.Capture)
	rng := newRand(seed)
	d, truth := ocr.TranscribeLabeled(l, noise, rng)
	return Labeled{Doc: d, Truth: truth}
}

// LearnPatterns builds a holdout corpus from the given simulated sites and
// mines per-entity pattern sets from it — the fully distantly-supervised
// configuration of Section 5.2.1. Use holdout sites appropriate to the
// task (the paper's Table 2 recipe is exposed through the internal holdout
// package for the built-in tasks).
func LearnPatterns(task string, seed int64) []*PatternSet {
	var sites []holdout.Site
	switch task {
	case "event-posters":
		sites = holdout.D2Sites()
	case "real-estate":
		sites = holdout.D3Sites()
	default:
		return nil
	}
	c := holdout.Build(sites, holdout.BuildOptions{Seed: seed})
	return holdout.LearnedSets(c, holdout.LearnOptions{})
}

// TemplateCache memoizes layout trees by quantized-geometry fingerprint
// so documents sharing a form face skip VS2-Segment (see Config.Templates
// and ServerConfig.Template). Safe for concurrent use.
type TemplateCache = template.Cache

// TemplateStats is a point-in-time snapshot of a TemplateCache's
// hit/miss/eviction counters.
type TemplateStats = template.Stats

// NewTemplateCache builds a bounded LRU layout-template cache. capacity
// is the maximum number of memoized templates (0 selects 256); quantum
// is the geometry tolerance band in page units absorbing OCR jitter
// (0 selects 4). m, when non-nil, receives the template.* metrics.
func NewTemplateCache(capacity int, quantum float64, m *Metrics) *TemplateCache {
	return template.New(template.Config{Capacity: capacity, Quantum: quantum, Metrics: m})
}

// Embedder is the word-embedding interface of the semantic components.
type Embedder = embed.Embedder

// NewLexiconEmbedder returns the built-in deterministic topic+n-gram
// embedder (the offline Word2Vec substitute).
func NewLexiconEmbedder() Embedder { return embed.NewLexicon() }

// TrainEmbedder trains PPMI-SVD embeddings on a corpus of plain texts.
func TrainEmbedder(corpus []string, dim int) Embedder {
	return embed.TrainPPMI(corpus, dim, 4, 30)
}

// TextOnlyBaseline runs the paper's text-only comparison pipeline
// (Tesseract-style layout, pattern search, Lesk disambiguation) for ΔF1
// comparisons against the full system.
func TextOnlyBaseline(task Task, d *Document) []Extraction {
	bt := baselines.Task{Dataset: task.Name, Sets: task.Sets, Weights: task.Weights}
	return baselines.TextOnly{}.Extract(bt, d)
}

// RGB is an 8-bit sRGB colour, the colour type of document elements.
type RGB = colorlab.RGB

// Common document colours for building documents by hand.
var (
	Black = colorlab.Black
	White = colorlab.White
	Gray  = colorlab.Gray
	Red   = colorlab.Red
	Blue  = colorlab.Blue
	Green = colorlab.Green
)
