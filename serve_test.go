package vs2

// Unit tests of the serving layer: transient-error classification,
// admission control and shedding, retry semantics (normal and degraded
// mode), circuit-breaker trip/recovery, and graceful drain. The soak
// test that crosses all of them under load lives in serve_chaos_test.go.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vs2/internal/extract"
	"vs2/internal/faults"
	"vs2/internal/segment"
)

// namedDoc clones the chaos poster under a new ID so per-document
// routing and batches stay distinguishable.
func namedDoc(id string) *Document {
	d := chaosDoc()
	d.ID = id
	return d
}

func invalidDoc(id string) *Document {
	return &Document{ID: id, Width: 100, Height: 100} // no elements
}

type countingSegmenter struct {
	inner SegmentBackend
	n     atomic.Int64
}

func (c *countingSegmenter) SegmentContext(ctx context.Context, d *Document) (*Node, error) {
	c.n.Add(1)
	return c.inner.SegmentContext(ctx, d)
}

// fastRetry keeps test backoffs in the microsecond range.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 1}
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestIsTransient is the satellite classification table: every sentinel
// of the PR 1 error taxonomy plus the serving-layer sentinels.
func TestIsTransient(t *testing.T) {
	wrap := func(phase Phase, cause error) error {
		return &Error{Phase: phase, Err: cause}
	}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"invalid-document", wrap(PhaseValidate, fmt.Errorf("%w: nil document", ErrInvalidDocument)), false},
		{"empty-document", wrap(PhaseValidate, fmt.Errorf("%w: %w", ErrInvalidDocument, ErrEmptyDocument)), false},
		{"bare-empty-document", ErrEmptyDocument, false},
		{"non-finite", fmt.Errorf("doc x: %w", ErrNonFinite), false},
		{"too-many-elements", ErrTooManyElements, false},
		{"page-too-large", ErrPageTooLarge, false},
		{"caller-cancelled", wrap(PhaseSegment, context.Canceled), false},
		{"bare-cancelled", context.Canceled, false},
		{"server-closed", wrap(PhaseAdmit, ErrServerClosed), false},
		{"panic", wrap(PhaseSearch, fmt.Errorf("%w: boom", ErrPanic)), true},
		{"budget-exceeded", wrap(PhaseSegment, fmt.Errorf("%w: %w", ErrBudgetExceeded, context.DeadlineExceeded)), true},
		{"caller-deadline", wrap(PhaseSearch, context.DeadlineExceeded), true},
		{"overloaded", wrap(PhaseAdmit, fmt.Errorf("%w: queue full", ErrOverloaded)), true},
		{"breaker-open", wrap(PhaseSegment, fmt.Errorf("%w: short-circuited", ErrBreakerOpen)), true},
		{"injected-backend-error", wrap(PhaseSearch, faults.ErrInjected), true},
		{"unclassified", errors.New("mystery"), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsTransient(tc.err); got != tc.want {
				t.Fatalf("IsTransient(%v) = %v, want %v", tc.err, got, tc.want)
			}
			var pe *Error
			if errors.As(tc.err, &pe) {
				if got := pe.Transient(); got != tc.want {
					t.Fatalf("Error.Transient() = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestServerBatchMatchesPipeline: a clean server is a concurrency
// wrapper, not a different pipeline — batch results agree with direct
// ExtractContext calls, and shutdown is clean and idempotent.
func TestServerBatchMatchesPipeline(t *testing.T) {
	p := NewPipeline(Config{Task: EventPosterTask()})
	want, err := p.ExtractContext(context.Background(), chaosDoc())
	if err != nil {
		t.Fatalf("direct ExtractContext: %v", err)
	}

	m := NewMetrics()
	s := NewServer(p, ServerConfig{Workers: 4, QueueWait: 10 * time.Minute, Metrics: m, Retry: fastRetry(3)})
	docs := make([]*Document, 12)
	for i := range docs {
		docs[i] = namedDoc(fmt.Sprintf("batch-%d", i))
	}
	out := s.ExtractBatch(context.Background(), docs)
	if len(out) != len(docs) {
		t.Fatalf("batch returned %d results for %d docs", len(out), len(docs))
	}
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("doc %d: %v", i, r.Err)
		}
		if r.Index != i || r.Doc != docs[i] {
			t.Fatalf("doc %d: result misaligned (index %d)", i, r.Index)
		}
		if r.Result.IsDegraded() {
			t.Fatalf("doc %d: clean run degraded: %+v", i, r.Result.Degraded)
		}
		if fmt.Sprint(r.Result.Entities) != fmt.Sprint(want.Entities) {
			t.Fatalf("doc %d: entities diverge from direct pipeline run", i)
		}
	}
	shutdownServer(t, s)

	snap := m.Snapshot()
	if got := snap.Counters["serve.completed"]; got != int64(len(docs)) {
		t.Fatalf("serve.completed = %d, want %d", got, len(docs))
	}
	if got := snap.Histograms["serve.queue.wait.ms"].Count; got != int64(len(docs)) {
		t.Fatalf("queue-wait histogram count = %d, want %d", got, len(docs))
	}

	if _, err := s.Extract(context.Background(), namedDoc("late")); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-shutdown Extract err = %v, want ErrServerClosed", err)
	}
	var pe *Error
	_, err = s.Extract(context.Background(), namedDoc("late2"))
	if !errors.As(err, &pe) || pe.Phase != PhaseAdmit {
		t.Fatalf("post-shutdown err = %v, want *Error with PhaseAdmit", err)
	}
	shutdownServer(t, s) // idempotent
}

// TestServerShedsWhenSaturated: a full queue with no queue-wait budget
// sheds immediately with a structured ErrOverloaded.
func TestServerShedsWhenSaturated(t *testing.T) {
	task := EventPosterTask()
	p := NewPipeline(Config{
		Task: task,
		Segmenter: &faults.Segmenter{
			Inner:  segment.New(segment.Options{}),
			Inject: faults.Injection{Kind: faults.Delay, Sleep: 400 * time.Millisecond},
		},
	})
	m := NewMetrics()
	s := NewServer(p, ServerConfig{Workers: 1, Queue: 1, QueueWait: -1, Metrics: m, Retry: fastRetry(1)})
	defer shutdownServer(t, s)

	var wg sync.WaitGroup
	launch := func(id string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Extract(context.Background(), namedDoc(id)) //nolint:errcheck
		}()
	}
	launch("slow-1") // occupies the worker
	waitFor(t, func() bool { return m.Snapshot().Gauges["serve.inflight"] >= 1 })
	launch("slow-2") // occupies the single queue slot
	waitFor(t, func() bool { return m.Snapshot().Counters["serve.enqueued"] >= 2 })

	_, err := s.Extract(context.Background(), namedDoc("shed-me"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var pe *Error
	if !errors.As(err, &pe) || pe.Phase != PhaseAdmit {
		t.Fatalf("err = %v, want *Error with PhaseAdmit", err)
	}
	if !IsTransient(err) {
		t.Fatal("ErrOverloaded must classify as transient (caller may retry later)")
	}
	if got := m.Snapshot().Counters["serve.shed"]; got < 1 {
		t.Fatalf("serve.shed = %d, want >= 1", got)
	}
	wg.Wait()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServerNeverRetriesInvalidDocuments: the acceptance guarantee that
// retries never fire for ErrInvalidDocument — the backends are not even
// consulted.
func TestServerNeverRetriesInvalidDocuments(t *testing.T) {
	cs := &countingSegmenter{inner: segment.New(segment.Options{})}
	p := NewPipeline(Config{Task: EventPosterTask(), Segmenter: cs})
	m := NewMetrics()
	s := NewServer(p, ServerConfig{Workers: 2, Metrics: m, Retry: fastRetry(3)})
	defer shutdownServer(t, s)

	_, err := s.Extract(context.Background(), invalidDoc("empty"))
	if !errors.Is(err, ErrInvalidDocument) || !errors.Is(err, ErrEmptyDocument) {
		t.Fatalf("err = %v, want ErrInvalidDocument wrapping ErrEmptyDocument", err)
	}
	if IsTransient(err) {
		t.Fatal("invalid document classified transient")
	}
	if got := m.Snapshot().Counters["serve.retries"]; got != 0 {
		t.Fatalf("serve.retries = %d, want 0", got)
	}
	if got := cs.n.Load(); got != 0 {
		t.Fatalf("segmenter invoked %d times for an invalid document", got)
	}
}

// TestServerRetriesTransientSearchError: a search backend that fails
// exactly once is retried and succeeds on the second attempt.
func TestServerRetriesTransientSearchError(t *testing.T) {
	task := EventPosterTask()
	p := NewPipeline(Config{
		Task: task,
		Extractor: &faults.Extractor{
			Inner:  extract.New(extract.Options{Weights: task.Weights}),
			Search: faults.Injection{Kind: faults.Error, Times: 1},
		},
	})
	m := NewMetrics()
	s := NewServer(p, ServerConfig{Workers: 1, Metrics: m, Retry: fastRetry(3)})
	defer shutdownServer(t, s)

	res, err := s.Extract(context.Background(), namedDoc("flaky-search"))
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if len(res.Entities) == 0 {
		t.Fatal("retried run extracted nothing from a matchable poster")
	}
	snap := m.Snapshot()
	if got := snap.Counters["serve.retries"]; got != 1 {
		t.Fatalf("serve.retries = %d, want 1", got)
	}
	if got := snap.Counters["serve.retries.degraded"]; got != 0 {
		t.Fatalf("serve.retries.degraded = %d, want 0 (hard error retries on the primary path)", got)
	}
}

// TestServerDegradedRetryAfterPanic: a panic inside search sends the
// retry down the degraded path — linear segmentation + first-match —
// which succeeds once the fault has passed, with both bypasses recorded.
func TestServerDegradedRetryAfterPanic(t *testing.T) {
	task := EventPosterTask()
	p := NewPipeline(Config{
		Task: task,
		Extractor: &faults.Extractor{
			Inner:  extract.New(extract.Options{Weights: task.Weights}),
			Search: faults.Injection{Kind: faults.Panic, Times: 1},
		},
	})
	m := NewMetrics()
	s := NewServer(p, ServerConfig{Workers: 1, Metrics: m, Retry: fastRetry(3)})
	defer shutdownServer(t, s)

	res, err := s.Extract(context.Background(), namedDoc("panicky-search"))
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if !hasDegradation(res, PhaseSegment, "linear-segmentation") {
		t.Fatalf("degradations = %+v, want linear-segmentation", res.Degraded)
	}
	if !hasDegradation(res, PhaseDisambiguate, "first-match") {
		t.Fatalf("degradations = %+v, want first-match", res.Degraded)
	}
	for _, g := range res.Degraded {
		if g.Fallback == "linear-segmentation" && g.Cause == "" {
			t.Fatal("degraded-mode retry recorded no cause")
		}
	}
	snap := m.Snapshot()
	if got := snap.Counters["serve.retries.degraded"]; got != 1 {
		t.Fatalf("serve.retries.degraded = %d, want 1", got)
	}
	if len(res.Entities) == 0 {
		t.Fatal("degraded retry extracted nothing from a matchable poster")
	}
}

// TestSegmentBreakerTripsAndRecovers drives the acceptance scenario
// deterministically: consecutive segment failures trip the breaker, a
// tripped breaker serves via the linear fallback with the trip recorded
// in Result.Degraded, and after the cooldown a successful probe closes
// it again.
func TestSegmentBreakerTripsAndRecovers(t *testing.T) {
	task := EventPosterTask()
	p := NewPipeline(Config{
		Task: task,
		Segmenter: &faults.Segmenter{
			Inner:  segment.New(segment.Options{}),
			Inject: faults.Injection{Kind: faults.Error, Times: 3},
		},
	})
	m := NewMetrics()
	s := NewServer(p, ServerConfig{
		Workers: 1,
		Metrics: m,
		Retry:   fastRetry(1),
		Breaker: BreakerPolicy{Threshold: 3, Cooldown: 50 * time.Millisecond},
	})
	defer shutdownServer(t, s)

	// Three consecutive backend failures: each degrades to linear and
	// counts against the breaker.
	for i := 0; i < 3; i++ {
		res, err := s.Extract(context.Background(), namedDoc(fmt.Sprintf("seg-fail-%d", i)))
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if !hasDegradation(res, PhaseSegment, "linear-segmentation") {
			t.Fatalf("doc %d: degradations = %+v, want linear-segmentation", i, res.Degraded)
		}
	}
	if got := m.Snapshot().Counters["serve.breaker.segment.to_open"]; got != 1 {
		t.Fatalf("serve.breaker.segment.to_open = %d, want 1", got)
	}

	// Tripped: the segmenter is short-circuited — still served, via the
	// linear fallback, with the trip in Result.Degraded.
	res, err := s.Extract(context.Background(), namedDoc("while-open"))
	if err != nil {
		t.Fatalf("while open: %v", err)
	}
	tripped := false
	for _, g := range res.Degraded {
		if g.Phase == PhaseSegment && g.Fallback == "linear-segmentation" &&
			errorsContains(g.Cause, ErrBreakerOpen.Error()) {
			tripped = true
		}
	}
	if !tripped {
		t.Fatalf("degradations = %+v, want linear-segmentation caused by the open breaker", res.Degraded)
	}
	if len(res.Entities) == 0 {
		t.Fatal("breaker-routed run extracted nothing from a matchable poster")
	}

	// Cooldown elapses; the fault is exhausted, so the probe succeeds
	// and the breaker closes: a clean, undegraded run.
	time.Sleep(80 * time.Millisecond)
	res, err = s.Extract(context.Background(), namedDoc("after-cooldown"))
	if err != nil {
		t.Fatalf("after cooldown: %v", err)
	}
	if res.IsDegraded() {
		t.Fatalf("post-recovery run degraded: %+v", res.Degraded)
	}
	snap := m.Snapshot()
	if got := snap.Counters["serve.breaker.segment.to_closed"]; got != 1 {
		t.Fatalf("serve.breaker.segment.to_closed = %d, want 1", got)
	}
	if got := snap.Counters["serve.breaker.segment.to_half-open"]; got != 1 {
		t.Fatalf("serve.breaker.segment.to_half-open = %d, want 1", got)
	}
}

func errorsContains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestServerDrainFinishesInFlight: Shutdown stops admission but every
// admitted document still gets its real result.
func TestServerDrainFinishesInFlight(t *testing.T) {
	task := EventPosterTask()
	p := NewPipeline(Config{
		Task: task,
		Segmenter: &faults.Segmenter{
			Inner:  segment.New(segment.Options{}),
			Inject: faults.Injection{Kind: faults.Delay, Sleep: 50 * time.Millisecond},
		},
	})
	m := NewMetrics()
	// QueueWait is effectively unlimited: this test is about the drain
	// contract, and the race detector makes per-document latency unpredictable.
	s := NewServer(p, ServerConfig{Workers: 2, Queue: 8, QueueWait: 10 * time.Minute, Metrics: m, Retry: fastRetry(1)})

	docs := make([]*Document, 6)
	for i := range docs {
		docs[i] = namedDoc(fmt.Sprintf("drain-%d", i))
	}
	results := make(chan error, len(docs))
	for _, d := range docs {
		go func(d *Document) {
			_, err := s.Extract(context.Background(), d)
			results <- err
		}(d)
	}
	waitFor(t, func() bool { return m.Snapshot().Counters["serve.enqueued"] >= int64(len(docs)) })

	shutdownServer(t, s)
	for range docs {
		if err := <-results; err != nil {
			t.Fatalf("admitted document failed during drain: %v", err)
		}
	}
	if got := m.Snapshot().Counters["serve.completed"]; got != int64(len(docs)) {
		t.Fatalf("serve.completed = %d, want %d", got, len(docs))
	}
}
