package vs2

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vs2/internal/segment"
)

// The golden layout-tree corpus pins the exact segmentation of the
// example corpora, so any ordering or geometry regression — a seam
// found in a different place, children emitted in a different order, a
// parallel-scheduling leak into the output — diffs loudly instead of
// silently shifting downstream extractions. Regenerate after an
// intentional algorithm change with:
//
//	go test -run TestGoldenLayoutTrees -update .
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden layout trees")

// goldenNode is the serialised layout-tree shape: box, ordered element
// IDs, children. Depth is implied by nesting.
type goldenNode struct {
	Box      Rect         `json:"box"`
	Elements []int        `json:"elements,omitempty"`
	Children []goldenNode `json:"children,omitempty"`
}

func toGolden(n *Node) goldenNode {
	out := goldenNode{Box: n.Box, Elements: n.Elements}
	for _, c := range n.Children {
		out.Children = append(out.Children, toGolden(c))
	}
	return out
}

// goldenCorpora mirrors the examples/ corpora: same generators, fixed
// seeds, a few documents each (taxforms includes an OCR-noised scan,
// like examples/taxforms).
func goldenCorpora() map[string][]*Document {
	tax := GenerateTaxForms(2, 1988)
	noisy := OCRNoise(tax[1], 3)
	return map[string][]*Document{
		"taxforms":     {tax[0].Doc, noisy.Doc},
		"eventposters": {GenerateEventPosters(3, 7)[0].Doc, GenerateEventPosters(3, 7)[2].Doc},
		"realestate":   {GenerateRealEstateFlyers(2, 11)[0].Doc, GenerateRealEstateFlyers(2, 11)[1].Doc},
	}
}

func TestGoldenLayoutTrees(t *testing.T) {
	// Segment with the parallel configuration: the goldens then also
	// guard the determinism contract on the exact corpora the examples
	// ship (the differential suite covers randomized inputs).
	s := segment.New(segment.Options{Parallel: 8})
	for name, docs := range goldenCorpora() {
		t.Run(name, func(t *testing.T) {
			trees := make([]goldenNode, 0, len(docs))
			for _, d := range docs {
				root, err := s.SegmentContext(context.Background(), d)
				if err != nil {
					t.Fatalf("%s: %v", d.ID, err)
				}
				trees = append(trees, toGolden(root))
			}
			got, err := json.MarshalIndent(trees, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test -run TestGoldenLayoutTrees -update .` to create goldens)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("layout trees for %s diverge from %s\nregenerate with -update if the change is intentional", name, path)
			}
		})
	}
}
