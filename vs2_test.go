package vs2

import (
	"strings"
	"testing"
)

func TestPipelineEventPosters(t *testing.T) {
	docs := GenerateEventPosters(5, 42)
	p := NewPipeline(Config{Task: EventPosterTask()})
	for _, l := range docs {
		res := p.Extract(l.Doc)
		if len(res.Blocks) < 3 {
			t.Errorf("%s: only %d blocks", l.Doc.ID, len(res.Blocks))
		}
		if res.Tree == nil || len(res.Tree.Leaves()) != len(res.Blocks) {
			t.Error("tree/blocks mismatch")
		}
		if len(res.Entities) < 3 {
			t.Errorf("%s: only %d entities extracted", l.Doc.ID, len(res.Entities))
		}
	}
}

func TestPipelineRealEstate(t *testing.T) {
	l := GenerateRealEstateFlyers(1, 7)[0]
	p := NewPipeline(Config{Task: RealEstateTask()})
	res := p.Extract(l.Doc)
	found := map[string]string{}
	for _, e := range res.Entities {
		found[e.Entity] = e.Text
	}
	if phone, ok := found[BrokerPhone]; !ok || !strings.ContainsAny(phone, "0123456789") {
		t.Errorf("BrokerPhone = %q", phone)
	}
	if email, ok := found[BrokerEmail]; !ok || !strings.Contains(email, "@") {
		t.Errorf("BrokerEmail = %q", email)
	}
}

func TestPipelineTaxForms(t *testing.T) {
	l := GenerateTaxForms(1, 7)[0]
	p := NewPipeline(Config{Task: NISTTaxTask()})
	res := p.Extract(l.Doc)
	if len(res.Entities) < 20 {
		t.Errorf("extracted only %d form fields", len(res.Entities))
	}
}

func TestDocumentJSONRoundTrip(t *testing.T) {
	l := GenerateEventPosters(1, 3)[0]
	data, err := EncodeDocument(l.Doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != l.Doc.ID || len(back.Elements) != len(l.Doc.Elements) {
		t.Error("round trip mismatch")
	}
}

func TestOCRNoisePreservesTruth(t *testing.T) {
	l := GenerateEventPosters(3, 9)[1]
	obs := OCRNoise(l, 5)
	if err := obs.Doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(obs.Truth.Annotations) != len(l.Truth.Annotations) {
		t.Error("annotations lost")
	}
}

func TestCandidates(t *testing.T) {
	l := GenerateEventPosters(1, 11)[0]
	p := NewPipeline(Config{Task: EventPosterTask()})
	cands := p.Candidates(l.Doc)
	if len(cands) == 0 {
		t.Fatal("no candidates at all")
	}
	for entity, list := range cands {
		if len(list) == 0 {
			t.Errorf("empty candidate list for %s", entity)
		}
	}
}

func TestAblationConfigs(t *testing.T) {
	l := GenerateEventPosters(1, 13)[0]
	for _, cfg := range []Config{
		{Task: EventPosterTask(), DisableDisambiguation: true},
		{Task: EventPosterTask(), LeskDisambiguation: true},
	} {
		res := NewPipeline(cfg).Extract(l.Doc)
		if len(res.Entities) == 0 {
			t.Errorf("ablation config extracted nothing: %+v", cfg)
		}
	}
}

func TestLearnPatterns(t *testing.T) {
	sets := LearnPatterns("real-estate", 3)
	if len(sets) < 4 {
		t.Errorf("learned %d sets", len(sets))
	}
	if LearnPatterns("unknown-task", 3) != nil {
		t.Error("unknown task should learn nothing")
	}
}

func TestEmbedders(t *testing.T) {
	lex := NewLexiconEmbedder()
	if lex.Dim() == 0 {
		t.Error("lexicon embedder has zero dim")
	}
	trained := TrainEmbedder([]string{"alpha beta gamma alpha beta", "beta gamma delta beta"}, 4)
	if trained.Dim() == 0 {
		t.Error("trained embedder has zero dim")
	}
}

func TestTextOnlyBaseline(t *testing.T) {
	l := GenerateRealEstateFlyers(1, 17)[0]
	got := TextOnlyBaseline(RealEstateTask(), l.Doc)
	if len(got) == 0 {
		t.Error("text-only baseline extracted nothing")
	}
}

func TestFormFieldTaskCustomFields(t *testing.T) {
	task := FormFieldTask(map[string][]string{"total": {"Total amount due"}})
	if len(task.Sets) != 1 || task.Sets[0].Entity != "total" {
		t.Errorf("task sets = %+v", task.Sets)
	}
}
