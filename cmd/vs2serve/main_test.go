package main

// End-to-end tests of the vs2serve CLI over in-process generated
// corpora: clean streams, streams with invalid documents, trace output,
// flag validation, streaming-input guards, and journal/resume cycles.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vs2"
)

// posterStream encodes n generated event posters as a JSONL stream —
// one compact line per labelled document.
func posterStream(t *testing.T, n int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	for _, l := range vs2.GenerateEventPosters(n, 7) {
		data, err := json.Marshal(&l)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return &buf
}

func parseLines(t *testing.T, stdout string) []vs2.DocLine {
	t.Helper()
	var out []vs2.DocLine
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		var d vs2.DocLine
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("bad output line %q: %v", line, err)
		}
		out = append(out, d)
	}
	return out
}

// TestServeAdminEndpoints runs a stream with -admin bound to an
// ephemeral port and scrapes /metrics, /healthz and /slo while the
// batch runs (the scrape happens before stdin unblocks, so the server
// is mid-run when probed).
func TestServeAdminEndpoints(t *testing.T) {
	pr, pw := io.Pipe()
	addrCh := make(chan string, 1)
	stderrR, stderrW := io.Pipe()
	go func() {
		// The admin address is announced on stderr before input is read.
		sc := bufio.NewScanner(stderrR)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "vs2serve: admin listening on ") {
				addrCh <- strings.TrimPrefix(sc.Text(), "vs2serve: admin listening on ")
				break
			}
		}
		io.Copy(io.Discard, stderrR) //nolint:errcheck
	}()

	var stdout bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-task", "events", "-admin", "127.0.0.1:0", "-queue-wait", "10m"}, pr, &stdout, stderrW)
	}()
	addr := <-addrCh

	// First half of the corpus, then scrape mid-run, then the rest.
	stream := posterStream(t, 6).Bytes()
	half := bytes.Index(stream, []byte("\n")) + 1
	if _, err := pw.Write(stream[:half]); err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Errorf("/healthz = %d %s", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "# TYPE serve_workers gauge") {
		t.Errorf("/metrics = %d\n%.400s", code, body)
	}
	if code, body := get("/slo"); code != 200 || !strings.Contains(body, "p99_ms") {
		t.Errorf("/slo = %d %s", code, body)
	}
	if _, err := pw.Write(stream[half:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if code := <-done; code != 0 {
		t.Fatalf("exit %d", code)
	}
	stderrW.Close()
	if got := bytes.Count(bytes.TrimSuffix(stdout.Bytes(), []byte("\n")), []byte("\n")) + 1; got != 6 {
		t.Errorf("output lines = %d, want 6", got)
	}
}

func TestServeCleanStream(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-task", "events", "-workers", "2", "-queue-wait", "10m"},
		posterStream(t, 8), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	lines := parseLines(t, stdout.String())
	if len(lines) != 8 {
		t.Fatalf("%d output lines, want 8", len(lines))
	}
	for _, l := range lines {
		if l.Error != "" {
			t.Fatalf("doc %s failed: %s", l.ID, l.Error)
		}
		if len(l.Entities) == 0 {
			t.Fatalf("doc %s extracted no entities", l.ID)
		}
	}
	if !strings.Contains(stderr.String(), "8 documents: 8 completed") {
		t.Fatalf("summary missing:\n%s", stderr.String())
	}
}

// TestServeOutputOrderMatchesInput: results are emitted in input order
// even though extraction completes out of order across the pool.
func TestServeOutputOrderMatchesInput(t *testing.T) {
	stream := posterStream(t, 12)
	var wantIDs []string
	for _, line := range strings.Split(strings.TrimSpace(stream.String()), "\n") {
		var l vs2.Labeled
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			t.Fatal(err)
		}
		wantIDs = append(wantIDs, l.Doc.ID)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-task", "events", "-workers", "4", "-queue-wait", "10m"},
		stream, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	lines := parseLines(t, stdout.String())
	for i, l := range lines {
		if l.ID != wantIDs[i] {
			t.Fatalf("output line %d is %s, want %s (input order must be preserved)", i, l.ID, wantIDs[i])
		}
	}
}

func TestServeInvalidDocumentKeepsStreamAlive(t *testing.T) {
	stream := posterStream(t, 2)
	bad, err := json.Marshal(&vs2.Document{ID: "empty-doc", Width: 100, Height: 100})
	if err != nil {
		t.Fatal(err)
	}
	stream.Write(bad)
	stream.WriteByte('\n')

	var stdout, stderr bytes.Buffer
	code := run([]string{"-task", "events", "-workers", "2", "-queue-wait", "10m"},
		stream, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (one document failed); stderr: %s", code, stderr.String())
	}
	lines := parseLines(t, stdout.String())
	if len(lines) != 3 {
		t.Fatalf("%d output lines, want 3 (failed documents keep their line)", len(lines))
	}
	var failed, ok int
	for _, l := range lines {
		if l.ID == "empty-doc" {
			if !strings.Contains(l.Error, "invalid document") {
				t.Fatalf("empty doc error = %q, want a structured invalid-document error", l.Error)
			}
			failed++
			continue
		}
		if l.Error != "" {
			t.Fatalf("doc %s failed: %s", l.ID, l.Error)
		}
		ok++
	}
	if failed != 1 || ok != 2 {
		t.Fatalf("failed=%d ok=%d, want 1/2", failed, ok)
	}
	if !strings.Contains(stderr.String(), "2 completed") || !strings.Contains(stderr.String(), "1 failed") {
		t.Fatalf("summary missing:\n%s", stderr.String())
	}
}

// TestServeMalformedLineIsLineNumbered: a broken line aborts the scan
// with its 1-based line number, while already-submitted documents still
// drain and keep their output lines.
func TestServeMalformedLineIsLineNumbered(t *testing.T) {
	stream := posterStream(t, 2)
	stream.WriteString("{not json at all\n")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-task", "events", "-workers", "2", "-queue-wait", "10m"},
		stream, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stdin:3:") {
		t.Fatalf("stderr lacks the line-numbered diagnostic:\n%s", stderr.String())
	}
	if lines := parseLines(t, stdout.String()); len(lines) != 2 {
		t.Fatalf("%d output lines, want the 2 documents before the bad line", len(lines))
	}
}

// TestServeMaxLineGuard: an input line over -max-line aborts with a
// line-numbered error instead of buffering it into memory.
func TestServeMaxLineGuard(t *testing.T) {
	var stream bytes.Buffer
	stream.WriteString(`{"id":"huge","padding":"` + strings.Repeat("x", 8192) + `"}` + "\n")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-task", "events", "-workers", "2", "-queue-wait", "10m", "-max-line", "4096"},
		&stream, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stdin:1: line exceeds -max-line 4096") {
		t.Fatalf("stderr lacks the max-line diagnostic:\n%s", stderr.String())
	}
}

func TestServeTraceStream(t *testing.T) {
	tracePath := t.TempDir() + "/traces.jsonl"
	var stdout, stderr bytes.Buffer
	code := run([]string{"-task", "events", "-workers", "2", "-queue-wait", "10m", "-trace", tracePath},
		posterStream(t, 3), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	traceLines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(traceLines) != 3 {
		t.Fatalf("%d trace lines, want 3", len(traceLines))
	}
	for i, line := range traceLines {
		var span vs2.SpanSnapshot
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("trace line %d: %v", i+1, err)
		}
		if !strings.HasPrefix(span.Name, "vs2 ") || span.DurationNS <= 0 {
			t.Fatalf("trace line %d: implausible root span %+v", i+1, span)
		}
	}
}

func TestServeMetricsSnapshot(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-task", "events", "-workers", "2", "-queue-wait", "10m", "-metrics"},
		posterStream(t, 2), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, key := range []string{"serve.completed", "serve.enqueued", "serve.queue.wait.ms"} {
		if !strings.Contains(stderr.String(), key) {
			t.Fatalf("metrics snapshot missing %s:\n%s", key, stderr.String())
		}
	}
}

// TestServeUnknownTaskListsAvailable: the error must enumerate the valid
// task names, not just echo the bad one.
func TestServeUnknownTaskListsAvailable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-task", "nope"}, &bytes.Buffer{}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	for _, name := range []string{"events", "realestate", "tax"} {
		if !strings.Contains(stderr.String(), name) {
			t.Fatalf("unknown-task error does not list %q:\n%s", name, stderr.String())
		}
	}
}

func TestServeEmptyInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-task", "events"}, &bytes.Buffer{}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no documents") {
		t.Fatalf("stderr = %s, want no-documents diagnostic", stderr.String())
	}
}

func TestServeResumeRequiresJournal(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-task", "events", "-resume"}, &bytes.Buffer{}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-resume requires -journal") {
		t.Fatalf("stderr = %s", stderr.String())
	}
}

// TestServeJournalResumeByteIdentical is the in-process half of the
// crash-recovery contract (the subprocess kill -9 half lives in the root
// crash_chaos_test.go): a journaled run, resumed over the same corpus,
// replays every completion without re-extracting and reproduces the
// uninterrupted output byte for byte.
func TestServeJournalResumeByteIdentical(t *testing.T) {
	corpus := posterStream(t, 6).Bytes()
	jdir := t.TempDir()

	var golden, stderr bytes.Buffer
	code := run([]string{"-task", "events", "-workers", "2", "-queue-wait", "10m",
		"-journal", filepath.Join(jdir, "run.wal")},
		bytes.NewReader(corpus), &golden, &stderr)
	if code != 0 {
		t.Fatalf("journaled run exit %d, stderr: %s", code, stderr.String())
	}

	// Resume over the completed journal: everything replays, nothing
	// re-runs, output is identical.
	var resumed, rerr bytes.Buffer
	code = run([]string{"-task", "events", "-workers", "2", "-queue-wait", "10m",
		"-journal", filepath.Join(jdir, "run.wal"), "-resume"},
		bytes.NewReader(corpus), &resumed, &rerr)
	if code != 0 {
		t.Fatalf("resume exit %d, stderr: %s", code, rerr.String())
	}
	if !bytes.Equal(golden.Bytes(), resumed.Bytes()) {
		t.Fatalf("resumed output differs from the original run:\n-- run --\n%s\n-- resume --\n%s",
			golden.String(), resumed.String())
	}
	if !strings.Contains(rerr.String(), "6 replayed") {
		t.Fatalf("resume summary does not report replays:\n%s", rerr.String())
	}
	if !strings.Contains(rerr.String(), "recovered 6 completed documents") {
		t.Fatalf("resume did not announce recovery:\n%s", rerr.String())
	}
}

// TestServeJournalFreshRunDiscardsState: without -resume an existing
// journal is reset, so documents re-extract instead of replaying.
func TestServeJournalFreshRunDiscardsState(t *testing.T) {
	corpus := posterStream(t, 2).Bytes()
	jpath := filepath.Join(t.TempDir(), "run.wal")
	args := []string{"-task", "events", "-workers", "2", "-queue-wait", "10m", "-journal", jpath}

	var out1, err1 bytes.Buffer
	if code := run(args, bytes.NewReader(corpus), &out1, &err1); code != 0 {
		t.Fatalf("first run exit %d: %s", code, err1.String())
	}
	var out2, err2 bytes.Buffer
	if code := run(args, bytes.NewReader(corpus), &out2, &err2); code != 0 {
		t.Fatalf("second run exit %d: %s", code, err2.String())
	}
	if strings.Contains(err2.String(), "replayed") && !strings.Contains(err2.String(), "0 replayed") {
		t.Fatalf("fresh (non-resume) run replayed journal state:\n%s", err2.String())
	}
}

// TestServeFlagValidation is the table-driven pin on validateServeFlags:
// every invariant fails fast as a usage error before any state is
// touched.
func TestServeFlagValidation(t *testing.T) {
	writable := t.TempDir()
	rodir := filepath.Join(t.TempDir(), "ro")
	if err := os.Mkdir(rodir, 0o555); err != nil {
		t.Fatal(err)
	}
	base := func() serveFlags {
		return serveFlags{task: "events", maxLine: 1024, checkpoint: 256}
	}
	cases := []struct {
		name    string
		mutate  func(*serveFlags)
		wantErr string
	}{
		{"defaults", func(f *serveFlags) {}, ""},
		{"unknown task", func(f *serveFlags) { f.task = "nope" }, "unknown task"},
		{"resume without journal", func(f *serveFlags) { f.resume = true }, "-resume requires -journal"},
		{"resume with journal", func(f *serveFlags) { f.resume = true; f.journal = filepath.Join(writable, "r.wal") }, ""},
		{"zero max-line", func(f *serveFlags) { f.maxLine = 0 }, "-max-line"},
		{"negative max-line", func(f *serveFlags) { f.maxLine = -5 }, "-max-line"},
		{"negative checkpoint", func(f *serveFlags) { f.checkpoint = -1 }, "-checkpoint"},
		{"negative template cache", func(f *serveFlags) { f.tplCap = -1 }, "-template-cache"},
		{"negative template quantum", func(f *serveFlags) { f.tplQuantum = -0.5 }, "-template-quantum"},
		{"template cache on", func(f *serveFlags) { f.tplCap = 64; f.tplQuantum = 8 }, ""},
		{"journal in writable dir", func(f *serveFlags) { f.journal = filepath.Join(writable, "run.wal") }, ""},
		{"journal in missing dir", func(f *serveFlags) { f.journal = filepath.Join(writable, "no-such", "run.wal") }, "not writable"},
		{"journal in unwritable dir", func(f *serveFlags) { f.journal = filepath.Join(rodir, "run.wal") }, "not writable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if os.Getuid() == 0 && tc.name == "journal in unwritable dir" {
				t.Skip("root ignores directory permission bits")
			}
			f := base()
			tc.mutate(&f)
			err := validateServeFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateServeFlags: %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateServeFlags: %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestServeNegativeCheckpointExitsUsage: the new invariant reaches the
// CLI surface with exit code 2.
func TestServeNegativeCheckpointExitsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-task", "events", "-checkpoint", "-3"}, &bytes.Buffer{}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-checkpoint") {
		t.Fatalf("stderr = %s, want -checkpoint diagnostic", stderr.String())
	}
}

// TestServeUnwritableJournalDirExitsUsage: a journal pointed at a
// missing directory dies before reading any input.
func TestServeUnwritableJournalDirExitsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	jpath := filepath.Join(t.TempDir(), "missing", "run.wal")
	code := run([]string{"-task", "events", "-journal", jpath}, posterStream(t, 1), &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "not writable") {
		t.Fatalf("stderr = %s, want not-writable diagnostic", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("stdout = %q, want empty — validation must precede extraction", stdout.String())
	}
}
