package main

// End-to-end tests of the vs2serve CLI over in-process generated
// corpora: clean streams, streams with invalid documents, trace output,
// and flag validation.

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"vs2"
	"vs2/internal/doc"
)

// posterStream encodes n generated event posters as a JSONL stream.
func posterStream(t *testing.T, n int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	for _, l := range vs2.GenerateEventPosters(n, 7) {
		data, err := doc.EncodeLabeled(&l)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return &buf
}

func parseLines(t *testing.T, stdout string) []docOutput {
	t.Helper()
	var out []docOutput
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		var d docOutput
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("bad output line %q: %v", line, err)
		}
		out = append(out, d)
	}
	return out
}

func TestServeCleanStream(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-task", "events", "-workers", "2", "-queue-wait", "10m"},
		posterStream(t, 8), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	lines := parseLines(t, stdout.String())
	if len(lines) != 8 {
		t.Fatalf("%d output lines, want 8", len(lines))
	}
	for _, l := range lines {
		if l.Error != "" {
			t.Fatalf("doc %s failed: %s", l.ID, l.Error)
		}
		if len(l.Entities) == 0 {
			t.Fatalf("doc %s extracted no entities", l.ID)
		}
	}
	if !strings.Contains(stderr.String(), "8 documents: 8 completed") {
		t.Fatalf("summary missing:\n%s", stderr.String())
	}
}

func TestServeInvalidDocumentKeepsStreamAlive(t *testing.T) {
	stream := posterStream(t, 2)
	bad, err := json.Marshal(&vs2.Document{ID: "empty-doc", Width: 100, Height: 100})
	if err != nil {
		t.Fatal(err)
	}
	stream.Write(bad)
	stream.WriteByte('\n')

	var stdout, stderr bytes.Buffer
	code := run([]string{"-task", "events", "-workers", "2", "-queue-wait", "10m"},
		stream, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (one document failed); stderr: %s", code, stderr.String())
	}
	lines := parseLines(t, stdout.String())
	if len(lines) != 3 {
		t.Fatalf("%d output lines, want 3 (failed documents keep their line)", len(lines))
	}
	var failed, ok int
	for _, l := range lines {
		if l.ID == "empty-doc" {
			if !strings.Contains(l.Error, "invalid document") {
				t.Fatalf("empty doc error = %q, want a structured invalid-document error", l.Error)
			}
			failed++
			continue
		}
		if l.Error != "" {
			t.Fatalf("doc %s failed: %s", l.ID, l.Error)
		}
		ok++
	}
	if failed != 1 || ok != 2 {
		t.Fatalf("failed=%d ok=%d, want 1/2", failed, ok)
	}
	if !strings.Contains(stderr.String(), "2 completed") || !strings.Contains(stderr.String(), "1 failed") {
		t.Fatalf("summary missing:\n%s", stderr.String())
	}
}

func TestServeTraceStream(t *testing.T) {
	tracePath := t.TempDir() + "/traces.jsonl"
	var stdout, stderr bytes.Buffer
	code := run([]string{"-task", "events", "-workers", "2", "-queue-wait", "10m", "-trace", tracePath},
		posterStream(t, 3), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	traceLines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(traceLines) != 3 {
		t.Fatalf("%d trace lines, want 3", len(traceLines))
	}
	for i, line := range traceLines {
		var span vs2.SpanSnapshot
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("trace line %d: %v", i+1, err)
		}
		if !strings.HasPrefix(span.Name, "vs2 ") || span.DurationNS <= 0 {
			t.Fatalf("trace line %d: implausible root span %+v", i+1, span)
		}
	}
}

func TestServeMetricsSnapshot(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-task", "events", "-workers", "2", "-queue-wait", "10m", "-metrics"},
		posterStream(t, 2), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, key := range []string{"serve.completed", "serve.enqueued", "serve.queue.wait.ms"} {
		if !strings.Contains(stderr.String(), key) {
			t.Fatalf("metrics snapshot missing %s:\n%s", key, stderr.String())
		}
	}
}

func TestServeUnknownTask(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-task", "nope"}, &bytes.Buffer{}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestServeEmptyInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-task", "events"}, &bytes.Buffer{}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no documents") {
		t.Fatalf("stderr = %s, want no-documents diagnostic", stderr.String())
	}
}
