// Command vs2serve runs a document stream through the resilient serving
// layer: a bounded worker pool with admission control, per-document
// retries and per-phase circuit breakers over the hardened extraction
// pipeline. It is the corpus-scale counterpart of the one-shot `vs2`
// command.
//
// Input is a stream of documents — JSONL or concatenated JSON, bare
// documents or labelled ones — from -in or stdin. Every document
// produces exactly one JSON line on stdout:
//
//	{"id":"poster-17","entities":[...],"degraded":["segment: ..."],"error":""}
//
// Documents the server sheds or that fail every retry keep their line,
// with the structured error in the "error" field; the exit code is then
// non-zero. A summary (completed / degraded / failed / shed) lands on
// stderr, -metrics dumps the full telemetry snapshot, and -trace writes
// one compact span tree per document as JSONL — the stream format
// vs2trace validates.
//
// Usage:
//
//	vs2gen -n 100 -out - | vs2serve -task events
//	vs2serve -in corpus.jsonl -task tax -workers 8 -queue 32 -retries 3
//	vs2serve -in corpus.jsonl -trace traces.jsonl -metrics
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"vs2"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// docOutput is the per-document stdout line.
type docOutput struct {
	ID       string           `json:"id"`
	Entities []vs2.Extraction `json:"entities,omitempty"`
	Degraded []string         `json:"degraded,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vs2serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", "document stream (JSONL or concatenated JSON); default stdin")
		task      = fs.String("task", "events", "extraction task: events | realestate | tax")
		workers   = fs.Int("workers", 0, "worker-pool size (0 = min(GOMAXPROCS, 8))")
		queue     = fs.Int("queue", 0, "admission-queue depth (0 = 4x workers)")
		queueWait = fs.Duration("queue-wait", 0, "queue-wait budget before shedding (0 = the -timeout deadline: a batch run does not shed its own tail)")
		retries   = fs.Int("retries", 0, "attempts per document, first try included (0 = 3)")
		timeout   = fs.Duration("timeout", 5*time.Minute, "overall batch deadline (0 = none)")
		metrics   = fs.Bool("metrics", false, "print the metrics snapshot to stderr after the run")
		traceOut  = fs.String("trace", "", "write one compact span tree per document (JSONL) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	taskCfg, err := taskByName(*task)
	if err != nil {
		fmt.Fprintln(stderr, "vs2serve:", err)
		return 2
	}

	docs, err := loadDocuments(*in, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "vs2serve:", err)
		return 1
	}
	if len(docs) == 0 {
		fmt.Fprintln(stderr, "vs2serve: no documents in input")
		return 1
	}

	// The server's 1s default queue-wait suits an online service; a batch
	// CLI run over a finite corpus must not shed its own tail, so the
	// budget defaults to the whole batch deadline.
	if *queueWait == 0 {
		*queueWait = *timeout
		if *queueWait == 0 {
			*queueWait = 24 * time.Hour
		}
	}

	m := vs2.NewMetrics()
	p := vs2.NewPipeline(vs2.Config{Task: taskCfg, Metrics: m})
	s := vs2.NewServer(p, vs2.ServerConfig{
		Workers:   *workers,
		Queue:     *queue,
		QueueWait: *queueWait,
		Retry:     vs2.RetryPolicy{MaxAttempts: *retries},
		Metrics:   m,
	})

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var traceW *json.Encoder
	var traceFile *os.File
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "vs2serve:", err)
			return 1
		}
		defer traceFile.Close()
		traceW = json.NewEncoder(traceFile)
	}

	results := extractAll(ctx, s, docs, traceW)

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "vs2serve:", err)
	}

	enc := json.NewEncoder(stdout)
	var completed, degraded, failed, shed int
	for _, r := range results {
		out := docOutput{ID: r.Doc.ID}
		switch {
		case r.Err != nil:
			out.Error = r.Err.Error()
			failed++
			if errors.Is(r.Err, vs2.ErrOverloaded) {
				shed++
			}
		default:
			out.Entities = r.Result.Entities
			completed++
			for _, g := range r.Result.Degraded {
				out.Degraded = append(out.Degraded, g.String())
			}
			if r.Result.IsDegraded() {
				degraded++
			}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "vs2serve:", err)
			return 1
		}
	}

	fmt.Fprintf(stderr, "vs2serve: %d documents: %d completed (%d degraded), %d failed (%d shed)\n",
		len(docs), completed, degraded, failed, shed)
	if *metrics {
		fmt.Fprintln(stderr, "vs2serve: metrics:")
		menc := json.NewEncoder(stderr)
		menc.SetIndent("", "  ")
		if err := menc.Encode(m.Snapshot()); err != nil {
			fmt.Fprintln(stderr, "vs2serve: metrics snapshot failed:", err)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// extractAll runs the documents through the server. Without tracing it
// is exactly Server.ExtractBatch; with tracing each document runs under
// its own span tree, written as one JSONL line when it finishes.
func extractAll(ctx context.Context, s *vs2.Server, docs []*vs2.Document, traceW *json.Encoder) []vs2.BatchResult {
	if traceW == nil {
		return s.ExtractBatch(ctx, docs)
	}
	out := make([]vs2.BatchResult, len(docs))
	var mu sync.Mutex // serialises trace lines
	var wg sync.WaitGroup
	for i, d := range docs {
		wg.Add(1)
		go func(i int, d *vs2.Document) {
			defer wg.Done()
			tr := vs2.NewTrace("vs2 " + d.ID)
			res, err := s.Extract(vs2.WithTrace(ctx, tr), d)
			tr.Finish()
			out[i] = vs2.BatchResult{Index: i, Doc: d, Result: res, Err: err}
			mu.Lock()
			defer mu.Unlock()
			traceW.Encode(tr.Snapshot()) //nolint:errcheck
		}(i, d)
	}
	wg.Wait()
	return out
}

// loadDocuments reads a document stream: JSONL, concatenated JSON, bare
// documents or labelled ones, from the named file or stdin when path is
// empty or "-".
func loadDocuments(path string, stdin io.Reader) ([]*vs2.Document, error) {
	r := stdin
	name := "stdin"
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
		name = path
	}
	dec := json.NewDecoder(r)
	var docs []*vs2.Document
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("%s: document %d: %w", name, len(docs)+1, err)
		}
		d, err := decodeDocument(raw)
		if err != nil {
			return nil, fmt.Errorf("%s: document %d: %w", name, len(docs)+1, err)
		}
		docs = append(docs, d)
	}
	return docs, nil
}

// decodeDocument accepts a labelled document or a bare one, matching
// the vs2 command's loader.
func decodeDocument(raw json.RawMessage) (*vs2.Document, error) {
	var l vs2.Labeled
	if err := json.Unmarshal(raw, &l); err == nil && l.Doc != nil {
		return l.Doc, nil
	}
	var d vs2.Document
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

func taskByName(name string) (vs2.Task, error) {
	switch name {
	case "events":
		return vs2.EventPosterTask(), nil
	case "realestate":
		return vs2.RealEstateTask(), nil
	case "tax":
		return vs2.NISTTaxTask(), nil
	default:
		return vs2.Task{}, fmt.Errorf("unknown task %q (want events | realestate | tax)", name)
	}
}
