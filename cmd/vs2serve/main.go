// Command vs2serve runs a document stream through the resilient serving
// layer: a bounded worker pool with admission control, per-document
// retries and per-phase circuit breakers over the hardened extraction
// pipeline, with optional write-ahead journaling so a run killed at any
// instant resumes without losing, duplicating or reordering a result.
// It is the corpus-scale counterpart of the one-shot `vs2` command.
//
// Input is a JSONL document stream — one bare or labelled document per
// line — from -in or stdin, read incrementally: corpora far larger than
// memory stream through, with -max-line bounding a single document.
// Every document produces exactly one JSON line on stdout, emitted in
// input order as results become available:
//
//	{"id":"poster-17","entities":[...],"degraded":["segment: ..."],"error":""}
//
// Documents the server sheds or that fail every retry keep their line,
// with the structured error in the "error" field; the exit code is then
// non-zero. A summary (completed / degraded / replayed / failed / shed)
// lands on stderr, -metrics dumps the full telemetry snapshot, and
// -trace writes one compact span tree per document as JSONL — the
// stream format vs2trace validates.
//
// Durability: -journal names a CRC-framed write-ahead journal in which
// every completion is recorded (with its exact output line) before it is
// emitted; -resume replays that journal, re-emits completed documents'
// lines byte for byte without re-running them, and continues with the
// rest — `kill -9` at any instant then -resume reproduces the output of
// an uninterrupted run. -checkpoint compacts the journal into an atomic
// snapshot every N completions.
//
// Usage:
//
//	vs2gen -n 100 -out - | vs2serve -task events
//	vs2serve -in corpus.jsonl -task tax -workers 8 -queue 32 -retries 3
//	vs2serve -in corpus.jsonl -journal run.wal
//	vs2serve -in corpus.jsonl -journal run.wal -resume   # after a crash
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vs2"
	"vs2/internal/admin"
	"vs2/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vs2serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", "JSONL document stream (one document per line); default stdin")
		task      = fs.String("task", "events", "extraction task: "+strings.Join(taskNames(), " | "))
		workers   = fs.Int("workers", 0, "worker-pool size (0 = min(GOMAXPROCS, 8))")
		queue     = fs.Int("queue", 0, "admission-queue depth (0 = 4x workers)")
		queueWait = fs.Duration("queue-wait", 0, "queue-wait budget before shedding (0 = the -timeout deadline: a batch run does not shed its own tail)")
		retries   = fs.Int("retries", 0, "attempts per document, first try included (0 = 3)")
		timeout   = fs.Duration("timeout", 5*time.Minute, "overall batch deadline (0 = none)")
		maxLine   = fs.Int("max-line", 16<<20, "largest input line accepted, in bytes")
		metrics   = fs.Bool("metrics", false, "print the metrics snapshot to stderr after the run")
		traceOut  = fs.String("trace", "", "write one compact span tree per document (JSONL) to this file")
		adminAddr = fs.String("admin", "", "admin HTTP listener address (/metrics, /healthz, /readyz, /slo, /debug/pprof); empty disables")

		fidelity     = fs.String("fidelity", "off", "fidelity ladder mode: off | pinned | adaptive")
		fidelityLvls = fs.Int("fidelity-levels", 3, "deepest fidelity degradation level")
		fidelityPin  = fs.Int("fidelity-pin", 0, "level a pinned-mode ladder holds")

		templateCache   = fs.Int("template-cache", 0, "layout-template cache capacity in entries (0 disables)")
		templateQuantum = fs.Float64("template-quantum", 0, "template fingerprint quantization step in layout units (0 = default)")

		journalPath = fs.String("journal", "", "write-ahead journal path; completions are journaled before they are emitted")
		resume      = fs.Bool("resume", false, "replay the journal: skip completed documents, re-emit their cached lines, continue the tail")
		jsync       = fs.String("journal-sync", "always", "journal fsync policy: always | interval | never")
		checkpoint  = fs.Int("checkpoint", 256, "compact the journal into a checkpoint every N completions (0 = only at exit)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if err := validateServeFlags(serveFlags{
		task:       *task,
		maxLine:    *maxLine,
		checkpoint: *checkpoint,
		journal:    *journalPath,
		resume:     *resume,
		fidelity:   *fidelity,
		tplCap:     *templateCache,
		tplQuantum: *templateQuantum,
	}); err != nil {
		fmt.Fprintln(stderr, "vs2serve:", err)
		return 2
	}
	taskCfg, err := taskByName(*task)
	if err != nil {
		fmt.Fprintln(stderr, "vs2serve:", err)
		return 2
	}

	m := vs2.NewMetrics()
	var jrn *vs2.Journal
	if *journalPath != "" {
		jrn, err = vs2.OpenJournal(*journalPath, vs2.JournalOptions{
			Resume:       *resume,
			Sync:         *jsync,
			CompactEvery: *checkpoint,
			Metrics:      m,
		})
		if err != nil {
			fmt.Fprintln(stderr, "vs2serve:", err)
			return 2
		}
		if comp, inflight := jrn.Replayed(); *resume && (comp > 0 || inflight > 0) {
			fmt.Fprintf(stderr, "vs2serve: journal %s: recovered %d completed documents, %d were in flight at the crash\n",
				*journalPath, comp, inflight)
		}
	}

	// The server's 1s default queue-wait suits an online service; a batch
	// CLI run over a finite corpus must not shed its own tail, so the
	// budget defaults to the whole batch deadline.
	if *queueWait == 0 {
		*queueWait = *timeout
		if *queueWait == 0 {
			*queueWait = 24 * time.Hour
		}
	}

	p := vs2.NewPipeline(vs2.Config{Task: taskCfg, Metrics: m})
	s := vs2.NewServer(p, vs2.ServerConfig{
		Workers:   *workers,
		Queue:     *queue,
		QueueWait: *queueWait,
		Retry:     vs2.RetryPolicy{MaxAttempts: *retries},
		Metrics:   m,
		Fidelity: vs2.FidelityPolicy{
			Mode:   *fidelity,
			Levels: *fidelityLvls,
			Pin:    *fidelityPin,
		},
		Template: vs2.TemplatePolicy{
			Capacity: *templateCache,
			Quantum:  *templateQuantum,
		},
	})

	// The end-to-end latency window behind /slo: submission to answer,
	// per document, over the last minute.
	win := obs.NewWindow(nil, time.Minute, 6)
	if *adminAddr != "" {
		adminSrv, aerr := admin.Start(*adminAddr, admin.Config{
			Metrics: func() obs.Snapshot { return m.Snapshot() },
			Health:  func() admin.HealthStatus { return serveHealth(m) },
			SLO:     func() admin.SLOStatus { return serveSLO(m, win) },
		})
		if aerr != nil {
			fmt.Fprintln(stderr, "vs2serve:", aerr)
			return 2
		}
		defer adminSrv.Close()
		fmt.Fprintf(stderr, "vs2serve: admin listening on %s\n", adminSrv.Addr())
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var traceW *json.Encoder
	if *traceOut != "" {
		traceFile, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "vs2serve:", err)
			return 1
		}
		defer traceFile.Close()
		traceW = json.NewEncoder(traceFile)
	}

	st := streamExtract(ctx, s, jrn, streamConfig{
		in:      *in,
		stdin:   stdin,
		maxLine: *maxLine,
		window:  vs2.ServerConfig{Workers: *workers, Queue: *queue}.Window(),
		stdout:  stdout,
		stderr:  stderr,
		traceW:  traceW,
		latency: win,
	})

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "vs2serve:", err)
	}
	if err := jrn.Close(); err != nil {
		fmt.Fprintln(stderr, "vs2serve:", err)
		st.runErr = true
	}

	fmt.Fprintf(stderr, "vs2serve: %d documents: %d completed (%d degraded, %d replayed), %d failed (%d shed)\n",
		st.docs, st.completed, st.degraded, st.replayed, st.failed, st.shed)
	if *metrics {
		fmt.Fprintln(stderr, "vs2serve: metrics:")
		menc := json.NewEncoder(stderr)
		menc.SetIndent("", "  ")
		if err := menc.Encode(m.Snapshot()); err != nil {
			fmt.Fprintln(stderr, "vs2serve: metrics snapshot failed:", err)
		}
	}
	switch {
	case st.docs == 0 && !st.runErr:
		fmt.Fprintln(stderr, "vs2serve: no documents in input")
		return 1
	case st.failed > 0 || st.runErr:
		return 1
	}
	return 0
}

// serveHealth derives the admin verdict from the registry: the process
// is alive and serving, and an open phase breaker — or a fidelity
// ladder that has degraded above level 0 — marks it degraded, not
// failed: it still answers, with degraded-mode fallbacks, cheaper
// triage paths, or structured errors.
func serveHealth(m *vs2.Metrics) admin.HealthStatus {
	snap := m.Snapshot()
	open := []string{}
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "serve.breaker.") && strings.HasSuffix(name, ".state") && v != 0 {
			open = append(open, strings.TrimSuffix(strings.TrimPrefix(name, "serve.breaker."), ".state"))
		}
	}
	sort.Strings(open)
	level := int64(snap.Gauges["serve.fidelity.level"])
	status := "ok"
	if len(open) > 0 || level > 0 {
		status = "degraded"
	}
	return admin.HealthStatus{Status: status, Detail: map[string]any{
		"open_breakers":  open,
		"fidelity_level": level,
	}}
}

// serveSLO summarizes the latency window and the server's cumulative
// outcome counters for /slo.
func serveSLO(m *vs2.Metrics, win *obs.Window) admin.SLOStatus {
	count, _ := win.Totals()
	snap := m.Snapshot()
	completed := snap.Counters["serve.completed"]
	failed := snap.Counters["serve.failed"]
	shed := snap.Counters["serve.shed"]
	var degraded, tplHits, tplMisses, tplEvictions int64
	shedReasons := map[string]int64{}
	shifts := map[string]int64{}
	triageDocs := map[string]int64{}
	for name, v := range snap.Counters {
		// One counter per degradation fallback (degraded.<fallback>).
		if strings.HasPrefix(name, "degraded.") {
			degraded += v
		}
		base, labels := obs.SplitName(name)
		// Template counters match by base name so shard-labeled series
		// (vs2d's merged registries) sum the same way plain ones do.
		switch base {
		case "template.hits":
			tplHits += v
		case "template.misses":
			tplMisses += v
		case "template.evictions":
			tplEvictions += v
		}
		for _, l := range labels {
			switch {
			case base == "serve.shed" && l.Key == "reason":
				shedReasons[l.Value] += v
			case base == "serve.fidelity.shifts" && l.Key == "direction":
				shifts[l.Value] += v
			case base == "serve.triage.docs" && l.Key == "class":
				triageDocs[l.Value] += v
			}
		}
	}
	slo := admin.SLOStatus{
		WindowSeconds: 60,
		Count:         count,
		P50MS:         win.Quantile(0.50),
		P95MS:         win.Quantile(0.95),
		P99MS:         win.Quantile(0.99),
		Completed:     completed,
		Failed:        failed,
		Shed:          shed,
		Degraded:      degraded,
		FidelityLevel: int64(snap.Gauges["serve.fidelity.level"]),

		TemplateHits:      tplHits,
		TemplateMisses:    tplMisses,
		TemplateEvictions: tplEvictions,
	}
	if probes := tplHits + tplMisses; probes > 0 {
		slo.TemplateHitRate = float64(tplHits) / float64(probes)
	}
	if len(shedReasons) > 0 {
		slo.ShedReasons = shedReasons
	}
	if len(shifts) > 0 {
		slo.FidelityShifts = shifts
	}
	if len(triageDocs) > 0 {
		slo.TriageDocs = triageDocs
	}
	if total := completed + failed; total > 0 {
		slo.ShedRate = float64(shed) / float64(total)
		slo.DegradedRate = float64(degraded) / float64(total)
	}
	return slo
}

// serveFlags carries the flag values the CLI invariants constrain.
type serveFlags struct {
	task       string
	maxLine    int
	checkpoint int
	journal    string
	resume     bool
	fidelity   string
	tplCap     int
	tplQuantum float64
}

// validateServeFlags applies the CLI invariants before any state is
// touched, so misconfiguration fails fast with a usage error instead of
// dying mid-batch; its cases are pinned by table-driven tests.
func validateServeFlags(f serveFlags) error {
	if _, err := taskByName(f.task); err != nil {
		return err
	}
	if f.resume && f.journal == "" {
		return errors.New("-resume requires -journal")
	}
	if f.maxLine <= 0 {
		return errors.New("-max-line must be positive")
	}
	if f.checkpoint < 0 {
		return errors.New("-checkpoint must be >= 0")
	}
	switch f.fidelity {
	case "", vs2.FidelityOff, vs2.FidelityPinned, vs2.FidelityAdaptive:
	default:
		return fmt.Errorf("unknown -fidelity mode %q (available: off, pinned, adaptive)", f.fidelity)
	}
	if f.tplCap < 0 {
		return errors.New("-template-cache must be >= 0")
	}
	if f.tplQuantum < 0 {
		return errors.New("-template-quantum must be >= 0")
	}
	if f.journal != "" {
		if err := writableParent(f.journal); err != nil {
			return fmt.Errorf("-journal %s: %w", f.journal, err)
		}
	}
	return nil
}

// writableParent proves the path's directory exists and accepts new
// files — the journal and its checkpoint both land there, and the
// checkpoint's atomic-rename protocol creates temp files beside them.
func writableParent(path string) error {
	dir := filepath.Dir(path)
	probe, err := os.CreateTemp(dir, ".vs2serve-probe-*")
	if err != nil {
		return fmt.Errorf("directory %s is not writable: %w", dir, err)
	}
	name := probe.Name()
	probe.Close()
	return os.Remove(name)
}

// streamConfig carries the plumbing of one streaming run.
type streamConfig struct {
	in      string
	stdin   io.Reader
	maxLine int
	window  int
	stdout  io.Writer
	stderr  io.Writer
	traceW  *json.Encoder
	latency *obs.Window // end-to-end latency for /slo (nil disables)
}

// streamStats aggregates the run for the summary line and exit code.
type streamStats struct {
	docs, completed, degraded, replayed, failed, shed int
	runErr                                            bool
}

// emitted is one document's outcome on its way to ordered emission.
type emitted struct {
	index int
	line  []byte
	stats func(*streamStats)
}

// streamExtract reads the corpus incrementally, runs each document
// through the server (skipping journal-completed ones), and emits one
// line per document on stdout in input order. Memory stays bounded by
// the in-flight window plus the reorder buffer it implies.
func streamExtract(ctx context.Context, s *vs2.Server, jrn *vs2.Journal, cfg streamConfig) streamStats {
	var st streamStats

	out := bufio.NewWriterSize(cfg.stdout, 1<<16)
	results := make(chan emitted, cfg.window)
	collectDone := make(chan struct{})
	go func() {
		defer close(collectDone)
		pending := map[int][]byte{}
		updates := map[int]func(*streamStats){}
		next := 0
		for e := range results {
			pending[e.index] = e.line
			updates[e.index] = e.stats
			for line, ok := pending[next]; ok; line, ok = pending[next] {
				out.Write(line)     //nolint:errcheck
				out.WriteByte('\n') //nolint:errcheck
				updates[next](&st)  // counters applied in emission order
				delete(pending, next)
				delete(updates, next)
				next++
			}
		}
	}()

	sem := make(chan struct{}, cfg.window)
	var wg sync.WaitGroup
	var traceMu sync.Mutex
	index := 0
	scanErr := scanDocuments(cfg.in, cfg.stdin, cfg.maxLine, func(d *vs2.Document) {
		i := index
		index++
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			br := extractOne(ctx, s, jrn, i, d, cfg.traceW, &traceMu)
			cfg.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
			results <- emitted{index: i, line: br.Line, stats: statsFor(br)}
		}()
	})
	wg.Wait()
	close(results)
	<-collectDone
	out.Flush() //nolint:errcheck

	st.docs = index
	if scanErr != nil {
		fmt.Fprintln(cfg.stderr, "vs2serve:", scanErr)
		st.runErr = true
	}
	return st
}

// extractOne runs (or replays) one document, tracing it when asked.
// Replayed documents never re-run, so they produce no trace line.
func extractOne(ctx context.Context, s *vs2.Server, jrn *vs2.Journal, i int, d *vs2.Document, traceW *json.Encoder, traceMu *sync.Mutex) vs2.BatchResult {
	if traceW == nil {
		return s.ExtractRecorded(ctx, i, d, jrn)
	}
	if _, done := jrn.Completed(d.ID); done {
		return s.ExtractRecorded(ctx, i, d, jrn) // replay fast path
	}
	tr := vs2.NewTrace("vs2 " + d.ID)
	br := s.ExtractRecorded(vs2.WithTrace(ctx, tr), i, d, jrn)
	tr.Finish()
	traceMu.Lock()
	defer traceMu.Unlock()
	traceW.Encode(tr.Snapshot()) //nolint:errcheck
	return br
}

// statsFor classifies one outcome for the summary counters. Replayed
// lines are re-parsed: a cached permanent failure must count (and exit)
// exactly as it did in the run that recorded it.
func statsFor(br vs2.BatchResult) func(*streamStats) {
	replayed := br.Replayed
	var failed, shed, degraded bool
	switch {
	case br.Replayed:
		var l vs2.DocLine
		if err := json.Unmarshal(br.Line, &l); err == nil {
			failed = l.Error != ""
			degraded = len(l.Degraded) > 0
		}
	case br.Err != nil:
		failed = true
		shed = errors.Is(br.Err, vs2.ErrOverloaded)
	default:
		degraded = br.Result.IsDegraded()
	}
	return func(st *streamStats) {
		switch {
		case failed:
			st.failed++
			if shed {
				st.shed++
			}
		default:
			st.completed++
			if degraded {
				st.degraded++
			}
		}
		if replayed {
			st.replayed++
		}
	}
}

// scanDocuments streams the JSONL corpus line by line, invoking fn for
// each document as it is parsed — nothing is buffered beyond one line.
// Errors carry the input name and 1-based line number. A line longer
// than maxLine aborts the scan rather than silently truncating.
func scanDocuments(path string, stdin io.Reader, maxLine int, fn func(*vs2.Document)) error {
	r := stdin
	name := "stdin"
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
		name = path
	}
	br := bufio.NewReaderSize(r, 64<<10)
	for lineNo := 1; ; lineNo++ {
		line, err := readLimitedLine(br, maxLine)
		if err == errLineTooLong {
			return fmt.Errorf("%s:%d: line exceeds -max-line %d bytes", name, lineNo, maxLine)
		}
		if err != nil && err != io.EOF {
			return fmt.Errorf("%s:%d: %w", name, lineNo, err)
		}
		trimmed := trimSpace(line)
		if len(trimmed) > 0 {
			d, derr := decodeDocument(trimmed)
			if derr != nil {
				return fmt.Errorf("%s:%d: %w", name, lineNo, derr)
			}
			fn(d)
		}
		if err == io.EOF {
			return nil
		}
	}
}

var errLineTooLong = errors.New("line too long")

// readLimitedLine reads one '\n'-terminated line (newline stripped),
// failing with errLineTooLong once the line outruns max instead of
// buffering it.
func readLimitedLine(br *bufio.Reader, max int) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		switch {
		case err == nil:
			line = line[:len(line)-1]
			if len(line) > max {
				return nil, errLineTooLong
			}
			return line, nil
		case err == bufio.ErrBufferFull:
			if len(line) > max {
				return nil, errLineTooLong
			}
		default:
			if len(line) > max {
				return nil, errLineTooLong
			}
			return line, err
		}
	}
}

func trimSpace(b []byte) []byte {
	start := 0
	for start < len(b) && (b[start] == ' ' || b[start] == '\t' || b[start] == '\r') {
		start++
	}
	end := len(b)
	for end > start && (b[end-1] == ' ' || b[end-1] == '\t' || b[end-1] == '\r') {
		end--
	}
	return b[start:end]
}

// decodeDocument accepts a labelled document or a bare one, matching
// the vs2 command's loader.
func decodeDocument(raw []byte) (*vs2.Document, error) {
	var l vs2.Labeled
	if err := json.Unmarshal(raw, &l); err == nil && l.Doc != nil {
		return l.Doc, nil
	}
	var d vs2.Document
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// tasks maps every task name to its constructor; taskNames and
// taskByName both derive from it so the error message can never drift
// out of sync with the real set.
var tasks = map[string]func() vs2.Task{
	"events":     vs2.EventPosterTask,
	"realestate": vs2.RealEstateTask,
	"tax":        vs2.NISTTaxTask,
}

func taskNames() []string {
	names := make([]string, 0, len(tasks))
	for n := range tasks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func taskByName(name string) (vs2.Task, error) {
	if mk, ok := tasks[name]; ok {
		return mk(), nil
	}
	return vs2.Task{}, fmt.Errorf("unknown task %q (available: %s)", name, strings.Join(taskNames(), ", "))
}
