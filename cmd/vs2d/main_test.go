package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vs2"
	"vs2/internal/shard"
)

// TestMain lets the test binary serve as its own shard worker: the
// supervisor re-execs os.Executable() with -worker as the first
// argument, and in a test process that executable is this test binary.
// Dispatching here (before the testing framework parses flags) makes
// the full front end runnable in-process, child fleet and all.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "-worker" {
		os.Exit(runWorker(os.Args[2:], os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// corpusJSONL renders n generated posters as a JSONL stream.
func corpusJSONL(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, l := range vs2.GenerateEventPosters(n, 1234) {
		data, err := json.Marshal(&l)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestValidate is the table-driven pin on the front end's flag
// invariants.
func TestValidate(t *testing.T) {
	writable := t.TempDir()
	rodir := filepath.Join(t.TempDir(), "ro")
	if err := os.Mkdir(rodir, 0o555); err != nil {
		t.Fatal(err)
	}
	base := func() options {
		return options{shards: 2, task: "events", maxLine: 1024, ckptEvery: 256,
			maxConns: 256, reconfigTimeout: time.Minute}
	}
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string
	}{
		{"defaults", func(o *options) {}, ""},
		{"zero shards", func(o *options) { o.shards = 0 }, "-shards"},
		{"negative shards", func(o *options) { o.shards = -3 }, "-shards"},
		{"unknown task", func(o *options) { o.task = "nope" }, "unknown task"},
		{"resume without state", func(o *options) { o.resume = true }, "-resume requires -state"},
		{"resume with state", func(o *options) { o.resume = true; o.state = writable }, ""},
		{"listen and in", func(o *options) { o.listen = ":0"; o.in = "x.jsonl" }, "mutually exclusive"},
		{"zero max-line", func(o *options) { o.maxLine = 0 }, "-max-line"},
		{"negative checkpoint", func(o *options) { o.ckptEvery = -1 }, "-checkpoint"},
		{"zero max-conns", func(o *options) { o.maxConns = 0 }, "-max-conns"},
		{"negative idle timeout", func(o *options) { o.idleTimeout = -time.Second }, "-idle-timeout"},
		{"zero reconfig timeout", func(o *options) { o.reconfigTimeout = 0 }, "-reconfig-timeout"},
		{"negative template cache", func(o *options) { o.tplCap = -1 }, "-template-cache"},
		{"negative template quantum", func(o *options) { o.tplQuantum = -2 }, "-template-quantum"},
		{"template cache on", func(o *options) { o.tplCap = 32; o.tplQuantum = 4 }, ""},
		{"writable state", func(o *options) { o.state = writable }, ""},
		{"state under unwritable parent", func(o *options) { o.state = filepath.Join(rodir, "sub") }, "sub"},
		{"unwritable state", func(o *options) { o.state = rodir }, "not writable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if os.Getuid() == 0 && strings.Contains(tc.name, "writable") && tc.wantErr != "" {
				t.Skip("root ignores directory permission bits")
			}
			o := base()
			tc.mutate(&o)
			err := validate(&o)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate: %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate: %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestWorkerArgsTemplateCache pins the per-shard forwarding: the front
// end's -template-cache/-template-quantum reach each worker's command
// line, and a disabled cache forwards nothing.
func TestWorkerArgsTemplateCache(t *testing.T) {
	o := options{task: "events", tplCap: 48, tplQuantum: 8}
	args := strings.Join(workerArgs(&o, 1), " ")
	if !strings.Contains(args, "-template-cache 48") || !strings.Contains(args, "-template-quantum 8") {
		t.Fatalf("workerArgs = %q, want template flags forwarded", args)
	}
	o = options{task: "events"}
	if args := strings.Join(workerArgs(&o, 1), " "); strings.Contains(args, "template") {
		t.Fatalf("workerArgs = %q, want no template flags when the cache is off", args)
	}
}

// TestWorkerPingPongAndEcho drives the -worker loop in-process: pings
// pong, documents come back keyed with rendered result lines.
func TestWorkerPingPongAndEcho(t *testing.T) {
	corpus := bytes.Split(bytes.TrimSpace(corpusJSONL(t, 2)), []byte("\n"))
	var stdin bytes.Buffer
	writeReq := func(r shard.Request) {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		stdin.Write(data)
		stdin.WriteByte('\n')
	}
	writeReq(shard.Request{Ping: true})
	writeReq(shard.Request{Key: "doc-a", Doc: corpus[0]})
	writeReq(shard.Request{Key: "doc-b", Doc: corpus[1]})
	writeReq(shard.Request{Ping: true})

	var stdout, stderr bytes.Buffer
	code := runWorker([]string{"-shard", "3", "-task", "events"}, &stdin, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("runWorker exit %d\nstderr: %s", code, stderr.String())
	}

	pongs, lines := 0, map[string]json.RawMessage{}
	sc := bufio.NewScanner(&stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var resp shard.Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		if resp.Pong {
			pongs++
			continue
		}
		lines[resp.Key] = resp.Line
	}
	if pongs != 2 {
		t.Errorf("pongs = %d, want 2", pongs)
	}
	if len(lines) != 2 {
		t.Fatalf("document responses = %d, want 2 (%v)", len(lines), lines)
	}
	for _, key := range []string{"doc-a", "doc-b"} {
		var dl vs2.DocLine
		if err := json.Unmarshal(lines[key], &dl); err != nil {
			t.Fatalf("%s: line is not a DocLine: %v", key, err)
		}
		if dl.Error != "" {
			t.Errorf("%s: unexpected error line: %s", key, dl.Error)
		}
	}
}

// TestWorkerSkipsMalformedRequests: garbage on the request stream is
// logged and skipped, not fatal.
func TestWorkerSkipsMalformedRequests(t *testing.T) {
	stdin := strings.NewReader("{\"ping\":true}\nnot json at all\n{\"ping\":true}\n")
	var stdout, stderr bytes.Buffer
	if code := runWorker([]string{"-task", "events"}, stdin, &stdout, &stderr); code != 0 {
		t.Fatalf("runWorker exit %d\nstderr: %s", code, stderr.String())
	}
	if got := bytes.Count(stdout.Bytes(), []byte("\n")); got != 2 {
		t.Errorf("responses = %d, want 2 pongs\nstdout: %s", got, stdout.String())
	}
	if !strings.Contains(stderr.String(), "bad request skipped") {
		t.Errorf("stderr does not mention the skipped request: %s", stderr.String())
	}
}

// TestWorkerRejectsUnknownTask: a bad -task is a usage error.
func TestWorkerRejectsUnknownTask(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := runWorker([]string{"-task", "bogus"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Fatalf("runWorker exit %d, want 2", code)
	}
}

// TestBatchEndToEnd runs the whole front end in-process — supervisor,
// child fleet (this test binary in -worker mode), scatter/merge — and
// pins the output contract: one line per document, input order, and
// byte identity between a fresh run and a -resume over its state.
func TestBatchEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real child-process fleet; skipped in -short")
	}
	corpus := corpusJSONL(t, 30)
	state := t.TempDir()
	args := []string{
		"-task", "events", "-shards", "3", "-state", state,
		"-probe-interval", "100ms", "-restart-backoff", "20ms",
	}

	var out1, err1 bytes.Buffer
	if code := run(args, bytes.NewReader(corpus), &out1, &err1); code != 0 {
		t.Fatalf("fresh run exit %d\nstderr: %s", code, err1.String())
	}
	lines := bytes.Split(bytes.TrimSuffix(out1.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != 30 {
		t.Fatalf("output lines = %d, want 30", len(lines))
	}
	for i, line := range lines {
		var dl vs2.DocLine
		if err := json.Unmarshal(line, &dl); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if want := fmt.Sprintf("d2-%05d", i); dl.ID != want {
			t.Fatalf("line %d: id %q, want %q — merge broke input order", i, dl.ID, want)
		}
	}

	var out2, err2 bytes.Buffer
	if code := run(append(append([]string(nil), args...), "-resume"), bytes.NewReader(corpus), &out2, &err2); code != 0 {
		t.Fatalf("resume run exit %d\nstderr: %s", code, err2.String())
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatalf("resume output differs from fresh run\n-- fresh --\n%s\n-- resume --\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(err2.String(), "replayed") {
		t.Errorf("resume run stderr never mentions replay: %s", err2.String())
	}
}

// TestBatchTraceStitching runs the fleet with telemetry and tracing on
// and pins the stitched-trace contract: one tree per document, each
// front-end route span carrying a grafted worker tree whose parent_span
// matches the route span's span_id, stamped with shard and epoch.
func TestBatchTraceStitching(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real child-process fleet; skipped in -short")
	}
	corpus := corpusJSONL(t, 10)
	state := t.TempDir()
	tracePath := filepath.Join(state, "trace.jsonl")
	args := []string{
		"-task", "events", "-shards", "2", "-state", state,
		"-trace", tracePath, "-telemetry-interval", "50ms",
		"-admin", "127.0.0.1:0",
		"-probe-interval", "100ms", "-restart-backoff", "20ms",
	}
	var out, errw bytes.Buffer
	if code := run(args, bytes.NewReader(corpus), &out, &errw); code != 0 {
		t.Fatalf("run exit %d\nstderr: %s", code, errw.String())
	}
	if _, err := os.Stat(filepath.Join(state, "admin.addr")); err != nil {
		t.Errorf("admin.addr not written: %v", err)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) != 10 {
		t.Fatalf("trace lines = %d, want 10 (orphans would add lines)\n%s", len(lines), data)
	}
	for i, line := range lines {
		var root vs2.SpanSnapshot
		if err := json.Unmarshal(line, &root); err != nil {
			t.Fatalf("trace line %d: %v", i, err)
		}
		if !strings.HasPrefix(root.Name, "vs2d ") {
			t.Fatalf("trace line %d: top-level span %q, want a front-end doc trace", i, root.Name)
		}
		if _, orphaned := root.Attrs["parent_span"]; orphaned {
			t.Fatalf("trace line %d: top-level span carries parent_span — an orphan leaked", i)
		}
		var route *vs2.SpanSnapshot
		for ci := range root.Children {
			if root.Children[ci].Name == "route" {
				route = &root.Children[ci]
			}
		}
		if route == nil {
			t.Fatalf("trace line %d: no route span in %s", i, line)
		}
		id, _ := route.Attrs["span_id"].(string)
		if id == "" {
			t.Fatalf("trace line %d: route span has no span_id", i)
		}
		var worker *vs2.SpanSnapshot
		for ci := range route.Children {
			if strings.HasPrefix(route.Children[ci].Name, "worker ") {
				worker = &route.Children[ci]
			}
		}
		if worker == nil {
			t.Fatalf("trace line %d: no worker tree grafted under route:\n%s", i, line)
		}
		if got, _ := worker.Attrs["parent_span"].(string); got != id {
			t.Errorf("trace line %d: worker parent_span %q != route span_id %q", i, got, id)
		}
		if _, ok := worker.Attrs["shard"]; !ok {
			t.Errorf("trace line %d: worker root missing the supervisor's shard stamp", i)
		}
		if _, ok := worker.Attrs["epoch"]; !ok {
			t.Errorf("trace line %d: worker root missing the supervisor's epoch stamp", i)
		}
		if len(worker.Children) == 0 {
			t.Errorf("trace line %d: worker tree has no pipeline phases", i)
		}
	}
}

// TestBatchFreshRunWipesState: without -resume an existing state
// directory is cleared, not silently replayed.
func TestBatchFreshRunWipesState(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real child-process fleet; skipped in -short")
	}
	corpus := corpusJSONL(t, 6)
	state := t.TempDir()
	stale := filepath.Join(state, "shard-0.wal")
	if err := os.WriteFile(stale, []byte("garbage that would poison a resume\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	args := []string{"-task", "events", "-shards", "2", "-state", state}
	if code := run(args, bytes.NewReader(corpus), &out, &errw); code != 0 {
		t.Fatalf("run exit %d\nstderr: %s", code, errw.String())
	}
	if got := bytes.Count(out.Bytes(), []byte("\n")); got != 6 {
		t.Fatalf("output lines = %d, want 6", got)
	}
}

// TestListenMode serves one TCP connection through the scatter engine.
func TestListenMode(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real child-process fleet; skipped in -short")
	}
	o := &options{
		shards: 2, task: "events", maxLine: 16 << 20, ckptEvery: 256,
		probeInterval: 100 * time.Millisecond, probeTimeout: 5 * time.Second,
		restartBackoff: 20 * time.Millisecond, restartMax: time.Second,
		maxRestarts: 3, drainGrace: 5 * time.Second,
		maxConns: 8, reconfigTimeout: time.Minute,
	}
	sup, _, err := startSupervisor(o, nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sup.Close(ctx) //nolint:errcheck
	}()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- serveListener(ctx, l, sup, sup.Metrics(), o, nil, nil, nil, io.Discard) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	corpus := corpusJSONL(t, 8)
	if _, err := conn.Write(corpus); err != nil {
		t.Fatal(err)
	}
	if cw, ok := conn.(*net.TCPConn); ok {
		cw.CloseWrite() //nolint:errcheck
	}
	reply, err := io.ReadAll(conn)
	conn.Close()
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(reply, []byte("\n")), []byte("\n"))
	if len(lines) != 8 {
		t.Fatalf("reply lines = %d, want 8\n%s", len(lines), reply)
	}
	for i, line := range lines {
		var dl vs2.DocLine
		if err := json.Unmarshal(line, &dl); err != nil {
			t.Fatalf("reply line %d: %v", i, err)
		}
		if want := fmt.Sprintf("d2-%05d", i); dl.ID != want {
			t.Fatalf("reply line %d: id %q, want %q", i, dl.ID, want)
		}
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serveListener: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveListener did not stop on context cancel")
	}
}

// TestScanLinesTooLong: an oversized line aborts with a line-numbered
// error instead of being truncated.
func TestScanLinesTooLong(t *testing.T) {
	in := strings.NewReader("short\n" + strings.Repeat("x", 2048) + "\n")
	var got []string
	err := scanLines(in, "test-input", 1024, func(raw []byte) error {
		got = append(got, string(raw))
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "test-input:2") {
		t.Fatalf("scanLines err = %v, want line-2 overflow", err)
	}
	if len(got) != 1 || got[0] != "short" {
		t.Fatalf("lines before overflow = %v, want [short]", got)
	}
}

// TestRouteKeyStable: named documents route by ID, anonymous ones by
// global position.
func TestRouteKeyStable(t *testing.T) {
	if got := routeKey(&vs2.Document{ID: "inv-7"}, 3); got != "inv-7" {
		t.Errorf("routeKey named = %q, want inv-7", got)
	}
	if got := routeKey(&vs2.Document{}, 3); got != "#3" {
		t.Errorf("routeKey anonymous = %q, want #3", got)
	}
	if got := routeKey(nil, 0); got != "#0" {
		t.Errorf("routeKey nil = %q, want #0", got)
	}
}
