package main

// Cross-process trace stitching. The front end opens one trace per
// document (admission → route → merge); the route span carries a unique
// span_id attribute whose value travels to the worker in Request.Span.
// The worker's extraction tree comes back in a telemetry shipment with
// that ID as its parent_span attribute, and the stitcher grafts it under
// the matching route span — one tree covering admission, routing, the
// shard's segment/search/disambiguate phases, and the ordered merge,
// even when the answering child is a restarted incarnation (the
// supervisor's shard/epoch stamp rides on every grafted root).
//
// Worker trees that match no front-end span are written as their own
// top-level lines, parent_span still attached: vs2trace diagnoses them
// as orphans, which is exactly what a stitching bug should look like.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"vs2/internal/obs"
	"vs2/internal/shard"
)

// docTrace is one document's front-end trace while it is live.
type docTrace struct {
	st        *stitcher
	tr        *obs.Trace
	admission *obs.Span
	route     *obs.Span
	merge     *obs.Span
	spanID    string
}

// stitcher accumulates front-end document traces and worker span
// shipments for one run, grafting them together at write time (after
// the fleet has drained, so every final telemetry flush has landed).
type stitcher struct {
	mu      sync.Mutex
	seq     int
	docs    []obs.SpanSnapshot            // finished front-end trees, emission order
	workers map[string][]obs.SpanSnapshot // parent_span -> worker trees
	orphans []obs.SpanSnapshot            // worker trees that arrived unparented
}

func newStitcher() *stitcher {
	return &stitcher{workers: map[string][]obs.SpanSnapshot{}}
}

// begin opens a document's trace at admission (the document has been
// decoded and is entering the scatter window) and returns the handle
// plus the span ID to send with the request.
func (st *stitcher) begin(key string) *docTrace {
	st.mu.Lock()
	st.seq++
	id := fmt.Sprintf("fe-%d", st.seq)
	st.mu.Unlock()
	tr := obs.New("vs2d " + key)
	root := tr.Root()
	root.SetAttr("key", key)
	dt := &docTrace{st: st, tr: tr, spanID: id}
	dt.admission = root.Child("admission")
	return dt
}

// routed marks the handoff to the supervisor: admission ends, the route
// span (the graft point) opens. Nil-safe.
func (dt *docTrace) routed() {
	if dt == nil {
		return
	}
	dt.admission.End()
	dt.route = dt.tr.Root().Child("route")
	dt.route.SetAttr("span_id", dt.spanID)
}

// answered marks the shard's response arriving: route ends, the ordered
// merge wait begins. Nil-safe.
func (dt *docTrace) answered() {
	if dt == nil {
		return
	}
	dt.route.End()
	dt.merge = dt.tr.Root().Child("merge")
}

// emitted marks the document's line leaving the process in input order;
// the finished tree joins the stitch set. Nil-safe.
func (dt *docTrace) emitted() {
	if dt == nil {
		return
	}
	dt.merge.End()
	dt.tr.Finish()
	snap := dt.tr.Snapshot()
	dt.st.mu.Lock()
	dt.st.docs = append(dt.st.docs, snap)
	dt.st.mu.Unlock()
}

// onTelemetry files a shipment's span trees under their parent IDs,
// stamping the supervisor's authoritative shard and epoch on each root —
// a span from epoch 2 answering a document first sent to epoch 1 is the
// retry surviving a worker restart, visibly so.
func (st *stitcher) onTelemetry(t shard.Telemetry) {
	if len(t.Spans) == 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, sp := range t.Spans {
		if sp.Attrs == nil {
			sp.Attrs = map[string]any{}
		}
		sp.Attrs["shard"] = t.Shard
		sp.Attrs["epoch"] = t.Epoch
		parent, _ := sp.Attrs["parent_span"].(string)
		if parent == "" {
			st.orphans = append(st.orphans, sp)
			continue
		}
		st.workers[parent] = append(st.workers[parent], sp)
	}
}

// writeFile grafts and writes the stitched stream: one JSONL tree per
// document, followed by any worker trees that matched nothing (left as
// top-level orphans for vs2trace to flag). Call only after the fleet
// has drained — final telemetry flushes arrive until then.
func (st *stitcher) writeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, doc := range st.docs {
		doc = st.graft(doc)
		if err := enc.Encode(doc); err != nil {
			return err
		}
	}
	for _, trees := range st.workers { // consumed entries were deleted by graft
		for _, sp := range trees {
			if err := enc.Encode(sp); err != nil {
				return err
			}
		}
	}
	for _, sp := range st.orphans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return f.Sync()
}

// graft attaches every worker tree whose parent_span matches a span_id
// in this document's tree, recursively. The document's root duration
// already covers the workers' wall clock (the route span waited on
// them), so grafting changes structure, not accounting.
func (st *stitcher) graft(sp obs.SpanSnapshot) obs.SpanSnapshot {
	if id, ok := sp.Attrs["span_id"].(string); ok {
		if trees, ok := st.workers[id]; ok {
			sp.Children = append(append([]obs.SpanSnapshot(nil), sp.Children...), trees...)
			delete(st.workers, id)
		}
	}
	for i := range sp.Children {
		sp.Children[i] = st.graft(sp.Children[i])
	}
	return sp
}

// unstitched counts worker trees still waiting for a parent, for the
// end-of-run diagnostic.
func (st *stitcher) unstitched() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := len(st.orphans)
	for _, trees := range st.workers {
		n += len(trees)
	}
	return n
}
