package main

// The shard-worker mode: the loop the supervisor runs in each child
// process. One worker owns one slice of the keyspace and one journal;
// it reads shard.Request lines from stdin, answers pings immediately,
// extracts documents through a vs2.Server with the front-end-assigned
// journal key, and writes keyed shard.Response lines on stdout. The
// journal always opens in resume mode — an intra-run restart must
// replay its completions (that is the whole point of restarting), and a
// fresh front-end run has already wiped the state directory — and is
// owner-stamped so shard K can never resume shard J's state.
//
// Stdin EOF is the shutdown signal: the parent closed the pipe (orderly
// drain or front-end death); the worker finishes its in-flight
// documents, journals, compacts and exits. Stdout write failures are
// deliberately ignored — a dead front end cannot read responses, and
// the matching EOF is already on its way.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"vs2"
	"vs2/internal/shard"
)

// runWorker is the -worker entry point; it returns the exit code.
func runWorker(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vs2d -worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	shardID := fs.Int("shard", 0, "this worker's shard index")
	task := fs.String("task", "events", "extraction task")
	workers := fs.Int("workers", 0, "worker-pool size (0 = min(GOMAXPROCS, 8))")
	queue := fs.Int("queue", 0, "admission-queue depth (0 = 4x workers)")
	retries := fs.Int("retries", 0, "attempts per document (0 = 3)")
	maxLine := fs.Int("max-line", 16<<20, "largest document line accepted, in bytes")
	jpath := fs.String("journal", "", "write-ahead journal path (empty disables durability)")
	jsync := fs.String("journal-sync", "always", "journal fsync policy: always | interval | never")
	ckpt := fs.Int("checkpoint", 256, "compact the journal every N completions (0 = only at exit)")
	telInterval := fs.Duration("telemetry-interval", 0, "ship metric deltas and completed spans up the response pipe this often (0 disables)")
	traceSpans := fs.Bool("trace-spans", false, "trace each extracted document and ship its span tree with the telemetry")
	fidelity := fs.String("fidelity", "off", "fidelity ladder mode: off | pinned | adaptive (the front end passes pinned 0: envelope levels decide per document)")
	fidelityLvls := fs.Int("fidelity-levels", 3, "deepest fidelity degradation level")
	fidelityPin := fs.Int("fidelity-pin", 0, "level a pinned-mode ladder holds")
	templateCache := fs.Int("template-cache", 0, "layout-template cache capacity in entries (0 disables)")
	templateQuantum := fs.Float64("template-quantum", 0, "template fingerprint quantization step in layout units (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "vs2d worker %d: %s\n", *shardID, fmt.Sprintf(format, a...))
	}

	taskCfg, err := taskByName(*task)
	if err != nil {
		logf("%v", err)
		return 2
	}
	// The worker keeps its own registry: the pipeline and server write
	// into it locally, and the telemetry shipper sends deltas upstream so
	// the front end can aggregate the fleet without shared memory.
	wm := vs2.NewMetrics()
	p := vs2.NewPipeline(vs2.Config{Task: taskCfg, Metrics: wm})
	s := vs2.NewServer(p, vs2.ServerConfig{
		Workers: *workers,
		Queue:   *queue,
		// The front end already bounds what it sends to this shard's
		// window; shedding here would turn backpressure into visible
		// (and run-dependent) error lines, breaking byte identity.
		QueueWait: 24 * time.Hour,
		Retry:     vs2.RetryPolicy{MaxAttempts: *retries},
		Metrics:   wm,
		Fidelity: vs2.FidelityPolicy{
			Mode:   *fidelity,
			Levels: *fidelityLvls,
			Pin:    *fidelityPin,
		},
		Template: vs2.TemplatePolicy{
			Capacity: *templateCache,
			Quantum:  *templateQuantum,
		},
	})

	var jrn *vs2.Journal
	if *jpath != "" {
		jrn, err = vs2.OpenJournal(*jpath, vs2.JournalOptions{
			Resume:       true,
			Sync:         *jsync,
			CompactEvery: *ckpt,
			Owner:        fmt.Sprintf("shard-%d", *shardID),
		})
		if err != nil {
			logf("%v", err)
			return 2
		}
		if comp, infl := jrn.Replayed(); comp > 0 || infl > 0 {
			logf("resumed journal: %d completions replayed, %d in-flight re-extract", comp, infl)
		}
	}

	// Responses interleave from many goroutines; each line is marshalled
	// whole and written under one mutex so frames never tear.
	var wmu sync.Mutex
	respond := func(resp shard.Response) {
		data, err := json.Marshal(resp)
		if err != nil {
			logf("marshal response: %v", err)
			return
		}
		wmu.Lock()
		stdout.Write(append(data, '\n')) //nolint:errcheck
		wmu.Unlock()
	}

	// The telemetry shipper: metric deltas since the last shipment plus
	// the span trees completed since then, riding the response pipe as
	// keyless Telemetry lines. The supervisor stamps shard and epoch on
	// receipt, so the worker sends neither.
	var telMu sync.Mutex
	var pendingSpans []vs2.SpanSnapshot
	var lastShipped vs2.MetricsSnapshot
	ship := func(final bool) {
		telMu.Lock()
		spans := pendingSpans
		pendingSpans = nil
		cur := wm.Snapshot()
		delta := cur.DeltaSince(lastShipped)
		lastShipped = cur
		telMu.Unlock()
		respond(shard.Response{Telemetry: &shard.Telemetry{Metrics: &delta, Spans: spans, Final: final}})
	}
	stopShip := make(chan struct{})
	shipDone := make(chan struct{})
	if *telInterval > 0 {
		go func() {
			defer close(shipDone)
			t := time.NewTicker(*telInterval)
			defer t.Stop()
			for {
				select {
				case <-stopShip:
					return
				case <-t.C:
					ship(false)
				}
			}
		}()
	} else {
		close(shipDone)
	}

	// extract runs one document, tracing it when asked. Journal-replayed
	// documents never re-run, so they get a stub tree marked replayed —
	// the front end's stitched trace still shows where the cached answer
	// came from, and vs2trace knows not to demand pipeline phases of it.
	extract := func(ctx context.Context, i int, req shard.Request, d *vs2.Document) vs2.BatchResult {
		if !*traceSpans {
			return s.ExtractRecordedKey(ctx, i, req.Key, d, jrn)
		}
		tr := vs2.NewTrace("worker " + req.Key)
		root := tr.Root()
		root.SetAttr("key", req.Key)
		if req.Span != "" {
			root.SetAttr("parent_span", req.Span)
		}
		var br vs2.BatchResult
		if _, done := jrn.Completed(req.Key); done {
			br = s.ExtractRecordedKey(ctx, i, req.Key, d, jrn) // replay fast path
			root.SetAttr("replayed", true)
		} else {
			br = s.ExtractRecordedKey(vs2.WithTrace(ctx, tr), i, req.Key, d, jrn)
			if br.Replayed {
				root.SetAttr("replayed", true)
			}
		}
		tr.Finish()
		telMu.Lock()
		pendingSpans = append(pendingSpans, tr.Snapshot())
		telMu.Unlock()
		return br
	}

	window := vs2.ServerConfig{Workers: *workers, Queue: *queue}.Window()
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	var done, replayed atomic.Int64
	ctx := context.Background()
	index := 0
	// Requests wrap the document line in a small key envelope; allow the
	// envelope beyond the front end's own -max-line.
	scanErr := scanLines(stdin, fmt.Sprintf("shard-%d stdin", *shardID), *maxLine+4096, func(raw []byte) error {
		var req shard.Request
		if err := json.Unmarshal(raw, &req); err != nil {
			logf("bad request skipped: %v", err)
			return nil
		}
		if req.Ping {
			respond(shard.Response{Pong: true})
			return nil
		}
		if req.Adopt != "" {
			// Scale-in handoff: merge the retired shard's journal (already
			// transferred to this worker's owner label) into our own. The
			// ack rides the per-key FIFO like a document; Adopt is
			// idempotent, so a crash between merge and ack just re-merges
			// an already-removed source on the retried request.
			wg.Add(1)
			go func() {
				defer wg.Done()
				n, aerr := jrn.Adopt(req.Adopt)
				if aerr != nil {
					logf("adopt %s: %v", req.Adopt, aerr)
					respond(shard.Response{Key: req.Key, Err: aerr.Error()})
					return
				}
				logf("adopted %d entries from %s", n, req.Adopt)
				respond(shard.Response{Key: req.Key, Adopted: n})
			}()
			return nil
		}
		i := index
		index++
		d, derr := decodeDocument(req.Doc)
		if derr != nil {
			respond(shard.Response{Key: req.Key, Line: vs2.RenderLine(vs2.BatchResult{
				Err: &vs2.Error{Phase: vs2.PhaseShard, Stage: "decode", Err: derr},
			})})
			return nil
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			// The front end's fidelity level rides the envelope; carry it
			// on the context so this document triages at the fleet's level.
			rctx := ctx
			if req.Level > 0 {
				rctx = vs2.WithFidelity(ctx, req.Level)
			}
			br := extract(rctx, i, req, d)
			if br.Replayed {
				replayed.Add(1)
			}
			done.Add(1)
			respond(shard.Response{Key: req.Key, Line: br.Line})
		}()
		return nil
	})
	wg.Wait()

	code := 0
	if scanErr != nil {
		logf("%v", scanErr)
		code = 1
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(shutCtx); err != nil {
		logf("shutdown: %v", err)
		code = 1
	}
	close(stopShip)
	<-shipDone
	if *telInterval > 0 || *traceSpans {
		ship(true) // shutdown flush: whatever the last tick missed
	}
	if err := jrn.Close(); err != nil {
		logf("journal close: %v", err)
		code = 1
	}
	logf("%d documents (%d replayed)", done.Load(), replayed.Load())
	return code
}
