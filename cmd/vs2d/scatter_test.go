package main

// Serve-path hardening tests: the connection cap and idle deadline run
// against a fake router, so no child-process fleet is needed. A scatter
// stream answers when it ends (output is buffered per stream), so each
// probe connection writes, half-closes, then reads its replies.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"vs2"
	"vs2/internal/obs"
)

// fakeRouter answers every document with a deterministic echo line,
// optionally after a delay.
type fakeRouter struct {
	delay time.Duration
}

func (f *fakeRouter) DoLevel(ctx context.Context, key string, doc json.RawMessage, span string, level int) ([]byte, error) {
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return json.Marshal(map[string]string{"id": key})
}

// startFakeListener serves a fake-routed listener and returns its
// address, metrics registry and a stop function.
func startFakeListener(t *testing.T, o *options, rt router) (string, *vs2.Metrics, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m := vs2.NewMetrics()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := serveListener(ctx, l, rt, m, o, nil, nil, nil, io.Discard); err != nil {
			t.Errorf("serveListener: %v", err)
		}
	}()
	return l.Addr().String(), m, func() {
		cancel()
		<-done
	}
}

func dialT(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	return conn
}

// exchange writes docs, half-closes, and returns everything the server
// sent back.
func exchange(t *testing.T, conn net.Conn, docs string) string {
	t.Helper()
	if _, err := conn.Write([]byte(docs)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite() //nolint:errcheck
	}
	reply, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return string(reply)
}

// TestServeConnLimitSheds: with -max-conns 1, a second concurrent
// connection is refused with one parseable JSON error line, the shed is
// counted, and releasing the first connection frees the slot.
func TestServeConnLimitSheds(t *testing.T) {
	o := &options{shards: 1, task: "events", maxLine: 1 << 20, maxConns: 1, workers: 1, queue: 4}
	addr, m, stop := startFakeListener(t, o, &fakeRouter{})
	defer stop()

	// First connection holds the only slot: stream open, nothing sent.
	first := dialT(t, addr)

	// Second connection: shed with a JSON error line, then closed.
	second := dialT(t, addr)
	shedReply, err := io.ReadAll(second)
	second.Close()
	if err != nil {
		t.Fatalf("reading shed conn: %v", err)
	}
	var shed map[string]string
	if jerr := json.Unmarshal([]byte(strings.TrimSpace(string(shedReply))), &shed); jerr != nil || !strings.Contains(shed["error"], "connection limit") {
		t.Fatalf("shed reply = %q, want one JSON connection-limit error line", shedReply)
	}
	if got := m.Counter(obs.Name("serve.shed", obs.L("reason", "conn_limit"))).Value(); got != 1 {
		t.Errorf(`serve.shed{reason="conn_limit"} = %d, want 1`, got)
	}

	// The held slot still works, and releasing it admits a newcomer.
	if reply := exchange(t, first, `{"id":"held"}`+"\n"); !strings.Contains(reply, "held") {
		t.Errorf("first conn reply = %q, want its echo", reply)
	}
	first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		third := dialT(t, addr)
		reply := exchange(t, third, `{"id":"after"}`+"\n")
		third.Close()
		if strings.Contains(reply, `"after"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: last reply %q", reply)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeIdleTimeoutCloses: a connection that goes silent is
// reclaimed after -idle-timeout — documents already submitted still
// answer, the close is counted, and the freed slot serves the next
// client.
func TestServeIdleTimeoutCloses(t *testing.T) {
	o := &options{shards: 1, task: "events", maxLine: 1 << 20, maxConns: 1, idleTimeout: 120 * time.Millisecond, workers: 1, queue: 4}
	addr, m, stop := startFakeListener(t, o, &fakeRouter{})
	defer stop()

	conn := dialT(t, addr)
	if _, err := conn.Write([]byte(`{"id":"before-idle"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	// Then go silent — no half-close: the idle deadline must end the
	// stream for us.
	reply, err := io.ReadAll(conn)
	conn.Close()
	if err != nil {
		t.Fatalf("reading idle-closed conn: %v", err)
	}
	if !strings.Contains(string(reply), "before-idle") {
		t.Errorf("in-flight document lost on idle close: %q", reply)
	}
	if got := m.Counter("serve.conn.idle_closed").Value(); got != 1 {
		t.Errorf("serve.conn.idle_closed = %d, want 1", got)
	}

	// The reclaimed slot serves the next connection (cap is 1, so this
	// only works if the idle close released it).
	next := dialT(t, addr)
	reply2 := exchange(t, next, `{"id":"fresh"}`+"\n")
	next.Close()
	if !strings.Contains(reply2, "fresh") {
		t.Fatalf("post-idle connection reply = %q", reply2)
	}
}

// TestServeIdleKeepsActiveConn: a client sending slower than the
// document rate but faster than the idle deadline is never reclaimed —
// the deadline re-arms on every read.
func TestServeIdleKeepsActiveConn(t *testing.T) {
	o := &options{shards: 1, task: "events", maxLine: 1 << 20, maxConns: 4, idleTimeout: 300 * time.Millisecond, workers: 1, queue: 4}
	addr, m, stop := startFakeListener(t, o, &fakeRouter{})
	defer stop()

	conn := dialT(t, addr)
	defer conn.Close()
	for i := 0; i < 4; i++ {
		time.Sleep(80 * time.Millisecond) // paced under the idle deadline
		if _, err := conn.Write([]byte(fmt.Sprintf(`{"id":"slow-%d"}`, i) + "\n")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite() //nolint:errcheck
	}
	reply, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !strings.Contains(string(reply), fmt.Sprintf("slow-%d", i)) {
			t.Errorf("reply missing slow-%d: %q", i, reply)
		}
	}
	if got := m.Counter("serve.conn.idle_closed").Value(); got != 0 {
		t.Errorf("serve.conn.idle_closed = %d for an active conn, want 0", got)
	}
}
