// Command vs2d is the fault-tolerant sharded front end of the vs2
// serving stack: it consistent-hash-routes documents by ID across N
// supervised worker shards, each a child process running the familiar
// vs2serve-style loop — bounded worker pool, retries, breakers — with
// its own write-ahead journal and checkpoint. The supervisor probes
// every shard for liveness, restarts crashed shards with exponential
// backoff (the restarted child resumes its own journal, replaying
// completed documents instead of re-extracting them), and fails a
// crash-looping shard's keyspace over to its ring successors.
//
// Two front-end modes share the scatter/merge engine:
//
//   - Batch (default): a JSONL corpus streams in from -in or stdin and
//     one result line per document is emitted on stdout in input order —
//     merged across shards, deduplicated, and byte-identical across any
//     combination of shard crashes and front-end restarts (-resume).
//   - Serve (-listen addr): a TCP listener; each connection is its own
//     JSONL stream with the same per-connection ordering contract.
//
// Durability: -state names a directory holding one journal per shard
// (shard-K.wal, plus its checkpoint and pidfile). A run without -resume
// starts fresh; with -resume every shard replays its own journal — and
// only its own: journals are owner-stamped, so a misrouted state
// directory fails loudly instead of replaying another shard's results.
//
// Usage:
//
//	vs2gen -n 500 -out - | vs2d -task events -shards 4 -state run/
//	vs2d -in corpus.jsonl -task tax -shards 4 -state run/ -resume
//	vs2d -listen :7333 -task events -shards 8
//
// The -worker flag (first argument) selects the internal shard-worker
// mode the supervisor spawns; it is not meant for direct use.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"vs2"
	"vs2/internal/admin"
	"vs2/internal/obs"
	"vs2/internal/serve"
	"vs2/internal/shard"
	"vs2/internal/triage"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-worker" {
		os.Exit(runWorker(args[1:], os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(run(args, os.Stdin, os.Stdout, os.Stderr))
}

// options carries the parsed and validated front-end configuration.
type options struct {
	shards    int
	task      string
	state     string
	resume    bool
	listen    string
	in        string
	workers   int
	queue     int
	retries   int
	maxLine   int
	jsync     string
	ckptEvery int
	timeout   time.Duration
	metrics   bool

	admin       string
	trace       string
	telInterval time.Duration

	probeInterval  time.Duration
	probeTimeout   time.Duration
	restartBackoff time.Duration
	restartMax     time.Duration
	maxRestarts    int
	drainGrace     time.Duration
	poisonAfter    int

	maxConns        int
	idleTimeout     time.Duration
	reconfigTimeout time.Duration

	fidelity     string
	fidelityLvls int
	fidelityPin  int

	tplCap     int
	tplQuantum float64
}

// run is the testable front-end entry point; it returns the exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	// The front end's own messages, the supervisor's log lines and every
	// child's stderr share this sink across goroutines; one lock for all.
	stderr = shard.SyncWriter(stderr)
	fs := flag.NewFlagSet("vs2d", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.IntVar(&o.shards, "shards", 2, "number of worker shards (child processes)")
	fs.StringVar(&o.task, "task", "events", "extraction task: "+strings.Join(taskNames(), " | "))
	fs.StringVar(&o.state, "state", "", "state directory: one write-ahead journal + checkpoint per shard; empty disables durability")
	fs.BoolVar(&o.resume, "resume", false, "resume from -state: each shard replays its own journal, completed documents re-emit byte for byte")
	fs.StringVar(&o.listen, "listen", "", "serve mode: accept JSONL document streams on this TCP address instead of running one batch")
	fs.StringVar(&o.in, "in", "", "batch mode input (JSONL, one document per line); default stdin")
	fs.IntVar(&o.workers, "workers", 0, "worker-pool size inside each shard (0 = min(GOMAXPROCS, 8))")
	fs.IntVar(&o.queue, "queue", 0, "admission-queue depth inside each shard (0 = 4x workers)")
	fs.IntVar(&o.retries, "retries", 0, "attempts per document inside a shard, first try included (0 = 3)")
	fs.IntVar(&o.maxLine, "max-line", 16<<20, "largest input line accepted, in bytes")
	fs.StringVar(&o.jsync, "journal-sync", "always", "shard journal fsync policy: always | interval | never")
	fs.IntVar(&o.ckptEvery, "checkpoint", 256, "compact each shard's journal every N completions (0 = only at exit)")
	fs.DurationVar(&o.timeout, "timeout", 10*time.Minute, "overall batch deadline (0 = none)")
	fs.BoolVar(&o.metrics, "metrics", false, "print the supervisor metrics snapshot to stderr after the run")
	fs.StringVar(&o.admin, "admin", "", "admin HTTP listener address (/metrics, /healthz, /readyz, /slo, /debug/pprof); empty disables")
	fs.StringVar(&o.trace, "trace", "", "write one stitched cross-process span tree per document (JSONL) to this file")
	fs.DurationVar(&o.telInterval, "telemetry-interval", 250*time.Millisecond, "how often each shard ships metric deltas and spans to the front end (0 disables)")
	fs.DurationVar(&o.probeInterval, "probe-interval", time.Second, "shard liveness-probe cadence (negative disables)")
	fs.DurationVar(&o.probeTimeout, "probe-timeout", 5*time.Second, "kill a shard that answers no probe within this deadline")
	fs.DurationVar(&o.restartBackoff, "restart-backoff", 100*time.Millisecond, "base backoff before restarting a crashed shard")
	fs.DurationVar(&o.restartMax, "restart-backoff-max", 5*time.Second, "backoff cap for crash-looping shards")
	fs.IntVar(&o.maxRestarts, "max-restarts", 8, "consecutive failed starts before a shard is abandoned and failed over")
	fs.DurationVar(&o.drainGrace, "drain-grace", 10*time.Second, "how long shutdown waits for a shard to drain before killing it")
	fs.IntVar(&o.poisonAfter, "poison-after", 0, "quarantine a document after it crashes its worker this many times (0 disables); quarantined keys land in state/poisoned.jsonl")
	fs.IntVar(&o.maxConns, "max-conns", 256, "serve mode: concurrent client connection cap; excess connections are shed with one JSON error line")
	fs.DurationVar(&o.idleTimeout, "idle-timeout", 2*time.Minute, "serve mode: close a connection idle (no readable byte) for this long; 0 disables")
	fs.DurationVar(&o.reconfigTimeout, "reconfig-timeout", 2*time.Minute, "deadline for one live reconfiguration (/admin/scale, /admin/roll, SIGHUP roll)")
	fs.StringVar(&o.fidelity, "fidelity", "off", "fleet fidelity ladder mode: off | pinned | adaptive; the front end stamps its level on every request so all shards degrade coherently")
	fs.IntVar(&o.fidelityLvls, "fidelity-levels", 3, "deepest fidelity degradation level")
	fs.IntVar(&o.fidelityPin, "fidelity-pin", 0, "level a pinned-mode ladder holds")
	fs.IntVar(&o.tplCap, "template-cache", 0, "per-shard layout-template cache capacity in entries (0 disables)")
	fs.Float64Var(&o.tplQuantum, "template-quantum", 0, "template fingerprint quantization step in layout units (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := validate(&o); err != nil {
		fmt.Fprintln(stderr, "vs2d:", err)
		return 2
	}

	var stitch *stitcher
	if o.trace != "" {
		stitch = newStitcher()
	}
	sup, m, err := startSupervisor(&o, stitch, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "vs2d:", err)
		return 2
	}
	// The end-to-end latency window behind /slo: admission to answer,
	// per document, over the last minute.
	win := obs.NewWindow(nil, time.Minute, 6)
	level := startFleetFidelity(&o, sup, m)
	defer level.stop()
	// Live reconfiguration entry points: /admin/scale and /admin/roll
	// block until the transition completes (bounded by -reconfig-timeout),
	// and SIGHUP triggers a rolling restart — the operator's zero-downtime
	// "pick up fresh children" signal.
	scaleTo := func(n int) error {
		ctx, cancel := context.WithTimeout(context.Background(), o.reconfigTimeout)
		defer cancel()
		return sup.Scale(ctx, n)
	}
	rollFleet := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), o.reconfigTimeout)
		defer cancel()
		return sup.Roll(ctx)
	}
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			fmt.Fprintln(stderr, "vs2d: SIGHUP: rolling restart")
			if err := rollFleet(); err != nil {
				fmt.Fprintln(stderr, "vs2d: roll:", err)
			}
		}
	}()
	if o.admin != "" {
		adminSrv, err := admin.Start(o.admin, admin.Config{
			Metrics: func() obs.Snapshot { return m.Snapshot() },
			Health:  func() admin.HealthStatus { return fleetHealth(sup, m) },
			SLO:     func() admin.SLOStatus { return fleetSLO(sup, m, win) },
			Scale:   scaleTo,
			Roll:    rollFleet,
		})
		if err != nil {
			fmt.Fprintln(stderr, "vs2d:", err)
			return 2
		}
		defer adminSrv.Close()
		fmt.Fprintf(stderr, "vs2d: admin listening on %s\n", adminSrv.Addr())
		if o.state != "" {
			// The bound address lands beside the journals so tooling (and the
			// chaos harness) can scrape a front end started with -admin :0.
			path := filepath.Join(o.state, "admin.addr")
			if err := os.WriteFile(path, []byte(adminSrv.Addr()+"\n"), 0o644); err != nil {
				fmt.Fprintf(stderr, "vs2d: admin.addr: %v\n", err)
			}
		}
	}
	code := 0
	if o.listen != "" {
		code = runListen(&o, sup, win, stitch, level.current, stderr)
	} else {
		code = runBatch(&o, sup, win, stitch, level.current, stdin, stdout, stderr)
	}
	closeCtx, cancel := context.WithTimeout(context.Background(), o.drainGrace+5*time.Second)
	defer cancel()
	if err := sup.Close(closeCtx); err != nil {
		fmt.Fprintln(stderr, "vs2d:", err)
		code = 1
	}
	if stitch != nil {
		// Written only now: the fleet has drained, so every worker's final
		// telemetry flush (and its span trees) has been folded in.
		if err := stitch.writeFile(o.trace); err != nil {
			fmt.Fprintln(stderr, "vs2d: trace:", err)
			code = 1
		}
		if n := stitch.unstitched(); n > 0 {
			fmt.Fprintf(stderr, "vs2d: trace: %d worker span trees matched no front-end span\n", n)
		}
	}
	if o.metrics {
		fmt.Fprintln(stderr, "vs2d: metrics:")
		writeMetrics(stderr, m)
	}
	return code
}

// fleetFidelity is the front end's side of the adaptive fidelity
// ladder: one controller watches the whole fleet's saturation and its
// level rides every request envelope (shard.Request.Level), so all
// shards degrade — and recover — coherently under the same verdict.
type fleetFidelity struct {
	ctrl  *triage.Controller
	pin   int
	armed bool
}

// current is the level stamped on the next request; 0 with the ladder
// off.
func (f fleetFidelity) current() int {
	if f.ctrl != nil {
		return f.ctrl.Level()
	}
	return f.pin
}

func (f fleetFidelity) stop() {
	if f.ctrl != nil {
		f.ctrl.Stop()
	}
}

// startFleetFidelity wires the front-end fidelity ladder per -fidelity.
// The adaptive controller samples fleet backlog against the in-flight
// window plus shard breaker states. Note the batch caveat: a batch run
// keeps the window full by design, so adaptive mode is most meaningful
// in serve mode (-listen) where backlog tracks offered load.
func startFleetFidelity(o *options, sup *shard.Supervisor, m *vs2.Metrics) fleetFidelity {
	switch o.fidelity {
	case vs2.FidelityAdaptive:
		f := fleetFidelity{armed: true}
		f.ctrl = triage.NewController(triage.ControllerConfig{
			Levels: o.fidelityLvls,
			Signals: func() triage.Signals {
				h := sup.Health()
				backlog, open := 0, false
				for _, sh := range h.Shards {
					backlog += sh.Backlog
					if sh.Breaker != serve.Closed.String() {
						open = true
					}
				}
				load := 0.0
				if w := o.window(); w > 0 {
					load = float64(backlog) / float64(w)
				}
				return triage.Signals{Load: load, BreakerOpen: open}
			},
			OnShift: func(from, to int) {
				dir := "up"
				if to < from {
					dir = "down"
				}
				m.Counter(obs.Name("frontend.fidelity.shifts", obs.L("direction", dir))).Inc()
				m.Gauge("frontend.fidelity.level").Set(float64(to))
			},
		})
		m.Gauge("frontend.fidelity.level").Set(0)
		f.ctrl.Start()
		return f
	case vs2.FidelityPinned:
		pin := o.fidelityPin
		if pin < 0 {
			pin = 0
		}
		if pin > o.fidelityLvls {
			pin = o.fidelityLvls
		}
		m.Gauge("frontend.fidelity.level").Set(float64(pin))
		return fleetFidelity{pin: pin, armed: true}
	default:
		return fleetFidelity{}
	}
}

// fleetHealth maps the supervisor's fleet snapshot onto the admin
// verdict: degraded keeps serving (liveness stays green) — that
// includes a fidelity ladder above level 0, which is reduced quality,
// not failure; failed means no shard can take work.
func fleetHealth(sup *shard.Supervisor, m *vs2.Metrics) admin.HealthStatus {
	h := sup.Health()
	level := int64(m.Gauge("frontend.fidelity.level").Value())
	status := "ok"
	if h.Degraded || level > 0 {
		status = "degraded"
	}
	if h.Failed {
		status = "failed"
	}
	return admin.HealthStatus{Status: status, Detail: map[string]any{
		"fleet":          h,
		"fidelity_level": level,
	}}
}

// fleetSLO summarizes the front end's end-to-end latency window and
// cumulative outcome counters for /slo, including the fleet fidelity
// state: the controller's level and transitions, per-class triage
// counts summed across the shards' telemetry, per-reason sheds, and
// the reconfiguration state (ring version, latest epoch, in-progress
// transition).
func fleetSLO(sup *shard.Supervisor, m *vs2.Metrics, win *obs.Window) admin.SLOStatus {
	count, _ := win.Totals()
	snap := m.Snapshot()
	completed := snap.Counters["frontend.completed"]
	failed := snap.Counters["frontend.failed"]
	degraded := snap.Counters["frontend.degraded"]
	shed := snap.Counters["frontend.shed"]
	shedReasons := map[string]int64{}
	shifts := map[string]int64{}
	triageDocs := map[string]int64{}
	var tplHits, tplMisses, tplEvictions int64
	for name, v := range snap.Counters {
		base, labels := obs.SplitName(name)
		// Shard caches ship template.* as shard-labeled series; summing
		// by base name yields the fleet-wide hit accounting.
		switch base {
		case "template.hits":
			tplHits += v
		case "template.misses":
			tplMisses += v
		case "template.evictions":
			tplEvictions += v
		}
		for _, l := range labels {
			switch {
			case base == "serve.shed" && l.Key == "reason":
				shedReasons[l.Value] += v
			case base == "frontend.fidelity.shifts" && l.Key == "direction":
				shifts[l.Value] += v
			case base == "serve.triage.docs" && l.Key == "class":
				triageDocs[l.Value] += v
			}
		}
	}
	slo := admin.SLOStatus{
		WindowSeconds: 60,
		Count:         count,
		P50MS:         win.Quantile(0.50),
		P95MS:         win.Quantile(0.95),
		P99MS:         win.Quantile(0.99),
		Completed:     completed,
		Failed:        failed,
		Shed:          shed,
		Degraded:      degraded,
		FidelityLevel: int64(snap.Gauges["frontend.fidelity.level"]),

		TemplateHits:      tplHits,
		TemplateMisses:    tplMisses,
		TemplateEvictions: tplEvictions,

		RingVersion:   sup.RingVersion(),
		ReconfigEpoch: int64(snap.Gauges["shard.reconfig.epoch"]),
	}
	if t := sup.Transition(); t != nil {
		slo.Reconfig = t
	}
	if probes := tplHits + tplMisses; probes > 0 {
		slo.TemplateHitRate = float64(tplHits) / float64(probes)
	}
	if total := completed + failed; total > 0 {
		slo.ShedRate = float64(shed) / float64(total)
		slo.DegradedRate = float64(degraded) / float64(total)
	}
	if len(shedReasons) > 0 {
		slo.ShedReasons = shedReasons
	}
	if len(shifts) > 0 {
		slo.FidelityShifts = shifts
	}
	if len(triageDocs) > 0 {
		slo.TriageDocs = triageDocs
	}
	return slo
}

// validate applies the front end's flag invariants; its cases are pinned
// by table-driven tests.
func validate(o *options) error {
	if o.shards < 1 {
		return fmt.Errorf("-shards must be >= 1 (got %d)", o.shards)
	}
	if _, err := taskByName(o.task); err != nil {
		return err
	}
	if o.resume && o.state == "" {
		return fmt.Errorf("-resume requires -state")
	}
	if o.listen != "" && o.in != "" {
		return fmt.Errorf("-listen and -in are mutually exclusive")
	}
	if o.maxLine <= 0 {
		return fmt.Errorf("-max-line must be positive")
	}
	if o.ckptEvery < 0 {
		return fmt.Errorf("-checkpoint must be >= 0")
	}
	if o.maxConns < 1 {
		return fmt.Errorf("-max-conns must be >= 1 (got %d)", o.maxConns)
	}
	if o.idleTimeout < 0 {
		return fmt.Errorf("-idle-timeout must be >= 0")
	}
	if o.reconfigTimeout <= 0 {
		return fmt.Errorf("-reconfig-timeout must be positive")
	}
	switch o.fidelity {
	case "", vs2.FidelityOff, vs2.FidelityPinned, vs2.FidelityAdaptive:
	default:
		return fmt.Errorf("unknown -fidelity mode %q (available: off, pinned, adaptive)", o.fidelity)
	}
	if o.tplCap < 0 {
		return fmt.Errorf("-template-cache must be >= 0")
	}
	if o.tplQuantum < 0 {
		return fmt.Errorf("-template-quantum must be >= 0")
	}
	if o.state != "" {
		if err := os.MkdirAll(o.state, 0o755); err != nil {
			return fmt.Errorf("-state %s: %w", o.state, err)
		}
		if err := writableDir(o.state); err != nil {
			return fmt.Errorf("-state %s: %w", o.state, err)
		}
	}
	return nil
}

// writableDir proves a directory accepts new files, failing fast with a
// usage error instead of dying mid-batch on the first journal append.
func writableDir(dir string) error {
	f, err := os.CreateTemp(dir, ".vs2d-probe-*")
	if err != nil {
		return fmt.Errorf("directory is not writable: %w", err)
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// startSupervisor wipes or keeps the state directory per -resume, then
// launches the shard fleet, each child an incarnation of this binary in
// -worker mode. Worker telemetry shipments fold into the returned fleet
// registry under a shard label, and their span trees (if stitching is
// on) into the stitcher.
func startSupervisor(o *options, stitch *stitcher, stderr io.Writer) (*shard.Supervisor, *vs2.Metrics, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, nil, fmt.Errorf("cannot locate own binary for worker mode: %w", err)
	}
	if o.state != "" && !o.resume {
		if err := wipeState(o.state); err != nil {
			return nil, nil, err
		}
	}
	m := vs2.NewMetrics()
	onTelemetry := func(t shard.Telemetry) {
		if t.Metrics != nil {
			m.Merge(*t.Metrics, obs.L("shard", strconv.Itoa(t.Shard)))
		}
		if stitch != nil {
			stitch.onTelemetry(t)
		}
	}
	cfg := shard.Config{
		Shards:         o.shards,
		Start:          func(i int) (*exec.Cmd, error) { return exec.Command(self, workerArgs(o, i)...), nil },
		OnStart:        pidfileWriter(o.state, stderr),
		ProbeInterval:  o.probeInterval,
		ProbeTimeout:   o.probeTimeout,
		RestartBackoff: o.restartBackoff, RestartBackoffMax: o.restartMax,
		MaxRestarts: o.maxRestarts,
		DrainGrace:  o.drainGrace,
		PoisonAfter: o.poisonAfter,
		OnPoison:    poisonJournal(o.state, stderr),
		Metrics:     m,
		OnTelemetry: onTelemetry,
		Stderr:      stderr,
	}
	if o.state != "" {
		// Scale-out: a shard index coming (back) into service must not
		// inherit a stale journal — its old completions were handed off
		// when the index retired, and the resized ring redistributes the
		// keyspace anyway. Re-extraction is deterministic, so deleting is
		// always safe. Only Scale calls this, never the initial fleet, so
		// -resume semantics are untouched.
		cfg.OnProvision = func(i int) error {
			for _, p := range []string{shardJournal(o.state, i), shardJournal(o.state, i) + ".ckpt"} {
				if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
					return fmt.Errorf("provision shard %d: %w", i, err)
				}
			}
			return nil
		}
		// Scale-in: re-stamp the drained retiree's journal to the
		// successor's owner label and hand its path over for adoption.
		// A retiree that never journaled has nothing to hand off.
		cfg.OnHandoff = func(retired, successor int) (string, error) {
			path := shardJournal(o.state, retired)
			if _, err := os.Stat(path); os.IsNotExist(err) {
				return "", nil
			}
			from := fmt.Sprintf("shard-%d", retired)
			to := fmt.Sprintf("shard-%d", successor)
			if err := vs2.TransferJournal(path, from, to); err != nil {
				return "", fmt.Errorf("transfer %s (%s -> %s): %w", path, from, to, err)
			}
			return path, nil
		}
	}
	sup, err := shard.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	return sup, m, nil
}

// workerArgs builds the command line of one shard worker. Workers always
// open their journal in resume mode: an intra-run restart must replay,
// and a fresh front-end run has already wiped the state directory.
func workerArgs(o *options, i int) []string {
	a := []string{
		"-worker",
		"-shard", strconv.Itoa(i),
		"-task", o.task,
		"-workers", strconv.Itoa(o.workers),
		"-queue", strconv.Itoa(o.queue),
		"-retries", strconv.Itoa(o.retries),
		"-max-line", strconv.Itoa(o.maxLine),
	}
	if o.state != "" {
		a = append(a,
			"-journal", shardJournal(o.state, i),
			"-journal-sync", o.jsync,
			"-checkpoint", strconv.Itoa(o.ckptEvery),
		)
	}
	if o.telInterval > 0 {
		a = append(a, "-telemetry-interval", o.telInterval.String())
	}
	if o.trace != "" {
		a = append(a, "-trace-spans")
	}
	if o.fidelity == vs2.FidelityPinned || o.fidelity == vs2.FidelityAdaptive {
		// Workers run pinned at level 0: triage is armed at its base
		// thresholds, and the envelope level the front end stamps on each
		// request (shard.Request.Level) overrides per document — the one
		// controller lives in the front end.
		a = append(a,
			"-fidelity", vs2.FidelityPinned,
			"-fidelity-levels", strconv.Itoa(o.fidelityLvls),
			"-fidelity-pin", "0",
		)
	}
	if o.tplCap > 0 {
		// Each shard owns its cache: templates are memoized where the
		// documents land, and a restarted shard simply rewarms.
		a = append(a, "-template-cache", strconv.Itoa(o.tplCap))
		if o.tplQuantum > 0 {
			a = append(a, "-template-quantum", strconv.FormatFloat(o.tplQuantum, 'g', -1, 64))
		}
	}
	return a
}

// poisonJournal builds the supervisor's OnPoison hook: one JSON line
// per quarantined document appended to state/poisoned.jsonl, so
// operators can triage the corpus offline. A stateless run gets only
// the supervisor's stderr log line.
func poisonJournal(state string, stderr io.Writer) func(shard int, key string, crashes int) {
	if state == "" {
		return nil
	}
	var mu sync.Mutex
	path := filepath.Join(state, "poisoned.jsonl")
	return func(shard int, key string, crashes int) {
		rec, err := json.Marshal(map[string]any{"shard": shard, "key": key, "crashes": crashes})
		if err != nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "vs2d: poisoned.jsonl: %v\n", err)
			return
		}
		defer f.Close()
		f.Write(append(rec, '\n')) //nolint:errcheck
	}
}

func shardJournal(state string, i int) string {
	return filepath.Join(state, fmt.Sprintf("shard-%d.wal", i))
}

// pidfileWriter records each shard child's PID at state/shard-K.pid so
// operators (and the chaos harness) can address individual shards.
func pidfileWriter(state string, stderr io.Writer) func(shard, pid int) {
	if state == "" {
		return nil
	}
	return func(shard, pid int) {
		path := filepath.Join(state, fmt.Sprintf("shard-%d.pid", shard))
		if err := os.WriteFile(path, []byte(strconv.Itoa(pid)+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "vs2d: shard %d: pidfile: %v\n", shard, err)
		}
	}
}

// wipeState clears a previous run's shard state (journals, checkpoints,
// pidfiles) for a fresh start. Only vs2d's own file patterns are
// touched.
func wipeState(dir string) error {
	for _, pat := range []string{"shard-*.wal", "shard-*.wal.ckpt", "shard-*.pid"} {
		matches, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return err
		}
		for _, f := range matches {
			if err := os.Remove(f); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("reset state %s: %w", f, err)
			}
		}
	}
	return nil
}

// runBatch scatters one corpus and merges the result stream to stdout.
func runBatch(o *options, sup *shard.Supervisor, win *obs.Window, stitch *stitcher, level func() int, stdin io.Reader, stdout, stderr io.Writer) int {
	ctx := context.Background()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	in := stdin
	name := "stdin"
	if o.in != "" && o.in != "-" {
		f, err := os.Open(o.in)
		if err != nil {
			fmt.Fprintln(stderr, "vs2d:", err)
			return 2
		}
		defer f.Close()
		in = f
		name = o.in
	}
	st := scatter(ctx, sup, scatterConfig{
		name:    name,
		maxLine: o.maxLine,
		window:  o.window(),
		metrics: sup.Metrics(),
		latency: win,
		stitch:  stitch,
		level:   level,
	}, in, stdout, stderr)
	fmt.Fprintf(stderr, "vs2d: %d documents across %d shards: %d completed (%d degraded), %d failed\n",
		st.docs, o.shards, st.completed, st.degraded, st.failed)
	if st.docs == 0 && !st.runErr {
		fmt.Fprintln(stderr, "vs2d: no documents in input")
		return 1
	}
	if st.failed > 0 || st.runErr {
		return 1
	}
	return 0
}

// window bounds the documents in flight across the whole fleet: enough
// to saturate every shard's pool and queue.
func (o *options) window() int {
	per := vs2.ServerConfig{Workers: o.workers, Queue: o.queue}.Window()
	return per * o.shards
}

// runListen accepts JSONL connections and serves each as its own
// scatter/merge stream until the listener dies. SIGINT/SIGTERM stop the
// accept loop and abort in-flight streams so the exit path still drains
// the fleet — the final telemetry flushes and the stitched trace only
// exist on an orderly shutdown.
func runListen(o *options, sup *shard.Supervisor, win *obs.Window, stitch *stitcher, level func() int, stderr io.Writer) int {
	l, err := net.Listen("tcp", o.listen)
	if err != nil {
		fmt.Fprintln(stderr, "vs2d:", err)
		return 2
	}
	defer l.Close()
	fmt.Fprintf(stderr, "vs2d: listening on %s\n", l.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serveListener(ctx, l, sup, sup.Metrics(), o, win, stitch, level, stderr); err != nil {
		fmt.Fprintln(stderr, "vs2d:", err)
		return 1
	}
	return 0
}

// writeMetrics dumps one indented metrics snapshot.
func writeMetrics(w io.Writer, m *vs2.Metrics) {
	data, err := m.MarshalJSON()
	if err != nil {
		fmt.Fprintln(w, "vs2d: metrics snapshot failed:", err)
		return
	}
	w.Write(data)           //nolint:errcheck
	io.WriteString(w, "\n") //nolint:errcheck
}

// tasks maps every task name to its constructor, mirroring cmd/vs2serve.
var tasks = map[string]func() vs2.Task{
	"events":     vs2.EventPosterTask,
	"realestate": vs2.RealEstateTask,
	"tax":        vs2.NISTTaxTask,
}

func taskNames() []string {
	names := make([]string, 0, len(tasks))
	for n := range tasks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func taskByName(name string) (vs2.Task, error) {
	if mk, ok := tasks[name]; ok {
		return mk(), nil
	}
	return vs2.Task{}, fmt.Errorf("unknown task %q (available: %s)", name, strings.Join(taskNames(), ", "))
}
