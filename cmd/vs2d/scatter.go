package main

// The scatter/merge engine: documents stream in line by line, each is
// routed to its shard through the supervisor, and exactly one result
// line per document is emitted downstream in input order. The reorder
// buffer is bounded by the in-flight window, each index is emitted at
// most once (the supervisor deduplicates keyed responses, the collector
// deduplicates indexes), and the raw input bytes travel to the worker
// verbatim so no re-encoding can perturb a resumed run's byte identity.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"vs2"
	"vs2/internal/obs"
)

// router is what the scatter engine needs from the shard supervisor:
// keyed dispatch with span and fidelity level. Narrowed to an interface
// so the serve-path plumbing (connection caps, idle deadlines) unit
// tests against a fake without a child-process fleet.
type router interface {
	DoLevel(ctx context.Context, key string, doc json.RawMessage, span string, level int) ([]byte, error)
}

// scatterConfig tunes one scatter/merge stream.
type scatterConfig struct {
	name    string // input name for line-numbered errors
	maxLine int
	window  int

	metrics *vs2.Metrics // frontend.* outcome counters (nil disables)
	latency *obs.Window  // end-to-end latency, admission to answer (nil disables)
	stitch  *stitcher    // per-document cross-process tracing (nil disables)
	level   func() int   // fleet fidelity level stamped per request (nil = 0)
}

// scatterStats aggregates one stream for the summary line and exit code.
type scatterStats struct {
	docs, completed, degraded, failed int
	runErr                            bool
}

// emitted is one document's outcome on its way to ordered emission.
type emitted struct {
	index int
	line  []byte
	dt    *docTrace // nil when untraced
}

// scatter reads JSONL documents from in, routes each through the
// supervisor, and writes one line per document to out in input order.
func scatter(ctx context.Context, sup router, cfg scatterConfig, in io.Reader, out, errw io.Writer) scatterStats {
	var st scatterStats

	bw := bufio.NewWriterSize(out, 1<<16)
	results := make(chan emitted, cfg.window)
	collectDone := make(chan struct{})
	var mu sync.Mutex // guards st counters from the collector
	go func() {
		defer close(collectDone)
		pending := map[int][]byte{}
		next := 0
		pendingTrace := map[int]*docTrace{}
		for e := range results {
			if _, dup := pending[e.index]; dup || e.index < next {
				// Exactly-once emission: a duplicate outcome for an index is
				// dropped, never written.
				continue
			}
			pending[e.index] = e.line
			pendingTrace[e.index] = e.dt
			for line, ok := pending[next]; ok; line, ok = pending[next] {
				bw.Write(line)     //nolint:errcheck
				bw.WriteByte('\n') //nolint:errcheck
				mu.Lock()
				tallyLine(line, &st, cfg.metrics)
				mu.Unlock()
				pendingTrace[next].emitted() // nil-safe
				delete(pending, next)
				delete(pendingTrace, next)
				next++
			}
		}
	}()

	sem := make(chan struct{}, cfg.window)
	var wg sync.WaitGroup
	index := 0
	scanErr := scanLines(in, cfg.name, cfg.maxLine, func(raw []byte) error {
		d, derr := decodeDocument(raw)
		if derr != nil {
			return derr
		}
		i := index
		index++
		key := routeKey(d, i)
		doc := append([]byte(nil), raw...) // the scanner reuses its buffer
		var dt *docTrace
		var span string
		if cfg.stitch != nil {
			dt = cfg.stitch.begin(key)
			span = dt.spanID
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			dt.routed()
			// The fidelity level is sampled at send time, per document, so
			// a controller shift mid-stream takes effect immediately.
			lvl := 0
			if cfg.level != nil {
				lvl = cfg.level()
			}
			line, err := sup.DoLevel(ctx, key, doc, span, lvl)
			dt.answered()
			cfg.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
			if err != nil {
				line = vs2.RenderLine(vs2.BatchResult{Doc: d, Err: &vs2.Error{
					Phase: vs2.PhaseShard, Stage: "route", Err: err,
				}})
			}
			results <- emitted{index: i, line: line, dt: dt}
		}()
		return nil
	})
	wg.Wait()
	close(results)
	<-collectDone
	bw.Flush() //nolint:errcheck

	st.docs = index
	if scanErr != nil {
		fmt.Fprintln(errw, "vs2d:", scanErr)
		st.runErr = true
	}
	return st
}

// tallyLine classifies one emitted result line for the summary counters
// and the frontend.* registry series behind /slo (m nil-safe).
func tallyLine(line []byte, st *scatterStats, m *vs2.Metrics) {
	var l vs2.DocLine
	if err := json.Unmarshal(line, &l); err != nil || l.Error != "" {
		st.failed++
		m.Counter("frontend.failed").Inc()
		return
	}
	st.completed++
	m.Counter("frontend.completed").Inc()
	if len(l.Degraded) > 0 {
		st.degraded++
		m.Counter("frontend.degraded").Inc()
	}
}

// routeKey is the stable journal/routing key of a document: its ID, or a
// positional key for anonymous documents. It must not change across
// resumes — the corpus order is the contract for anonymous documents.
func routeKey(d *vs2.Document, index int) string {
	if d != nil && d.ID != "" {
		return d.ID
	}
	return fmt.Sprintf("#%d", index)
}

// serveListener accepts JSONL connections and serves each with its own
// scatter stream until the listener closes or ctx expires. Two
// hardening measures protect the accept loop from misbehaving clients:
// a concurrent-connection cap (-max-conns) sheds excess connections
// with one JSON error line instead of queueing them into memory, and a
// per-read idle deadline (-idle-timeout) reclaims connections whose
// client has gone silent.
func serveListener(ctx context.Context, l net.Listener, rt router, m *vs2.Metrics, o *options, win *obs.Window, stitch *stitcher, level func() int, errw io.Writer) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			l.Close() //nolint:errcheck
		case <-done:
		}
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	sem := make(chan struct{}, o.maxConns)
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		select {
		case sem <- struct{}{}:
		default:
			shedConn(conn, m, errw)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			defer conn.Close()
			var in io.Reader = conn
			if o.idleTimeout > 0 {
				in = &idleConn{conn: conn, timeout: o.idleTimeout, m: m, errw: errw}
			}
			st := scatter(ctx, rt, scatterConfig{
				name:    conn.RemoteAddr().String(),
				maxLine: o.maxLine,
				window:  o.window(),
				metrics: m,
				latency: win,
				stitch:  stitch,
				level:   level,
			}, in, conn, errw)
			fmt.Fprintf(errw, "vs2d: %s: %d documents: %d completed, %d failed\n",
				conn.RemoteAddr(), st.docs, st.completed, st.failed)
		}()
	}
}

// shedConn refuses a connection over the cap: one well-formed JSON
// error line (so a JSONL client sees a parseable refusal, not a bare
// hangup), then close. Counted under serve.shed{reason="conn_limit"},
// the same series the in-process admission queue sheds into.
func shedConn(conn net.Conn, m *vs2.Metrics, errw io.Writer) {
	m.Counter(obs.Name("serve.shed", obs.L("reason", "conn_limit"))).Inc()
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	line, _ := json.Marshal(map[string]string{"error": "connection limit reached, retry later"})
	conn.Write(append(line, '\n')) //nolint:errcheck
	conn.Close()                   //nolint:errcheck
	fmt.Fprintf(errw, "vs2d: %s: shed (connection limit)\n", conn.RemoteAddr())
}

// idleConn wraps a connection with a rolling read deadline: each Read
// re-arms the idle clock, and a deadline expiry converts to io.EOF so
// the scatter stream ends cleanly — documents already in flight still
// emit, then the connection closes.
type idleConn struct {
	conn    net.Conn
	timeout time.Duration
	m       *vs2.Metrics
	errw    io.Writer
}

func (ic *idleConn) Read(p []byte) (int, error) {
	ic.conn.SetReadDeadline(time.Now().Add(ic.timeout)) //nolint:errcheck
	n, err := ic.conn.Read(p)
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		ic.m.Counter("serve.conn.idle_closed").Inc()
		fmt.Fprintf(ic.errw, "vs2d: %s: closing idle connection\n", ic.conn.RemoteAddr())
		return n, io.EOF
	}
	return n, err
}

// scanLines streams the JSONL input line by line, invoking fn for each
// non-blank line. Errors carry the input name and 1-based line number;
// a line longer than maxLine aborts rather than silently truncating.
func scanLines(r io.Reader, name string, maxLine int, fn func(raw []byte) error) error {
	br := bufio.NewReaderSize(r, 64<<10)
	for lineNo := 1; ; lineNo++ {
		line, err := readLimitedLine(br, maxLine)
		if err == errLineTooLong {
			return fmt.Errorf("%s:%d: line exceeds -max-line %d bytes", name, lineNo, maxLine)
		}
		if err != nil && err != io.EOF {
			return fmt.Errorf("%s:%d: %w", name, lineNo, err)
		}
		trimmed := trimSpace(line)
		if len(trimmed) > 0 {
			if ferr := fn(trimmed); ferr != nil {
				return fmt.Errorf("%s:%d: %w", name, lineNo, ferr)
			}
		}
		if err == io.EOF {
			return nil
		}
	}
}

var errLineTooLong = errors.New("line too long")

// readLimitedLine reads one '\n'-terminated line (newline stripped),
// failing with errLineTooLong once the line outruns max instead of
// buffering it.
func readLimitedLine(br *bufio.Reader, max int) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		switch {
		case err == nil:
			line = line[:len(line)-1]
			if len(line) > max {
				return nil, errLineTooLong
			}
			return line, nil
		case err == bufio.ErrBufferFull:
			if len(line) > max {
				return nil, errLineTooLong
			}
		default:
			if len(line) > max {
				return nil, errLineTooLong
			}
			return line, err
		}
	}
}

func trimSpace(b []byte) []byte {
	start := 0
	for start < len(b) && (b[start] == ' ' || b[start] == '\t' || b[start] == '\r') {
		start++
	}
	end := len(b)
	for end > start && (b[end-1] == ' ' || b[end-1] == '\t' || b[end-1] == '\r') {
		end--
	}
	return b[start:end]
}

// decodeDocument accepts a labelled document or a bare one, matching the
// vs2 and vs2serve loaders.
func decodeDocument(raw []byte) (*vs2.Document, error) {
	var l vs2.Labeled
	if err := json.Unmarshal(raw, &l); err == nil && l.Doc != nil {
		return l.Doc, nil
	}
	var d vs2.Document
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, err
	}
	return &d, nil
}
