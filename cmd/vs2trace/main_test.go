package main

// Regression tests of the vs2trace validator: the single-document mode
// used by `vs2 -trace`, the JSONL stream mode used by `vs2serve -trace`,
// and — the satellite contract — line-numbered diagnostics with a
// non-zero exit on corrupted lines, without aborting the rest of the
// stream.

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func runTrace(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestSingleTraceOK(t *testing.T) {
	code, stdout, stderr := runTrace(t, "-in", "testdata/good.json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "trace OK") {
		t.Fatalf("stdout missing trace OK:\n%s", stdout)
	}
	for _, phase := range []string{"validate", "segment", "search", "disambiguate"} {
		if !strings.Contains(stdout, phase) {
			t.Fatalf("stdout missing phase %q:\n%s", phase, stdout)
		}
	}
}

func TestStreamOK(t *testing.T) {
	code, stdout, stderr := runTrace(t, "-in", "testdata/stream.jsonl", "-depth", "0")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "3 traces checked, 0 bad") {
		t.Fatalf("stdout = %s, want 3 traces checked", stdout)
	}
	if !strings.Contains(stdout, "trace OK") {
		t.Fatalf("stdout missing trace OK:\n%s", stdout)
	}
}

// TestCorruptStreamContinues is the satellite regression: a stream with
// a truncated line and a garbage line exits non-zero with line-numbered
// diagnostics, and still validates every well-formed line around them.
func TestCorruptStreamContinues(t *testing.T) {
	code, stdout, stderr := runTrace(t, "-in", "testdata/corrupt.jsonl", "-depth", "0")
	if code == 0 {
		t.Fatal("corrupted stream exited 0")
	}
	// The two bad lines are called out by number.
	if !strings.Contains(stderr, "corrupt.jsonl:2:") {
		t.Fatalf("stderr missing diagnostic for truncated line 2:\n%s", stderr)
	}
	if !strings.Contains(stderr, "corrupt.jsonl:4:") {
		t.Fatalf("stderr missing diagnostic for garbage line 4:\n%s", stderr)
	}
	if !strings.Contains(stderr, "truncated") {
		t.Fatalf("stderr does not name the truncation:\n%s", stderr)
	}
	// The scan did not abort: the valid traces on lines 1, 3 and 5 were
	// all checked.
	if !strings.Contains(stdout, "3 traces checked, 2 bad") {
		t.Fatalf("stdout = %s, want 3 traces checked, 2 bad", stdout)
	}
	for _, doc := range []string{"doc-1", "doc-3", "doc-4"} {
		if !strings.Contains(stdout, doc) {
			t.Fatalf("valid trace %s not summarised after corrupt line:\n%s", doc, stdout)
		}
	}
}

func TestInvalidTraceStructureFails(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bad.json"
	// Child exceeds parent and the extract span is missing entirely.
	if err := os.WriteFile(path, []byte(`{"name":"vs2 x","start":"2026-08-06T10:00:00Z","duration_ns":100,"children":[{"name":"mystery","start":"2026-08-06T10:00:00Z","duration_ns":200}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runTrace(t, "-in", path)
	if code == 0 {
		t.Fatal("structurally invalid trace exited 0")
	}
	if !strings.Contains(stderr, "exceeds parent") || !strings.Contains(stderr, "no extract span") {
		t.Fatalf("stderr missing invariant diagnostics:\n%s", stderr)
	}
}

func TestMissingFlagExits2(t *testing.T) {
	code, _, stderr := runTrace(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
	}
}
