package main

// Regression tests of the vs2trace validator: the single-document mode
// used by `vs2 -trace`, the JSONL stream mode used by `vs2serve -trace`,
// the stitched cross-process mode used by `vs2d -trace`, and — the
// satellite contracts — line-numbered diagnostics with a non-zero exit
// on corrupted lines or orphaned spans, without aborting the rest of
// the stream.

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func runTrace(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestSingleTraceOK(t *testing.T) {
	code, stdout, stderr := runTrace(t, "-in", "testdata/good.json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "trace OK") {
		t.Fatalf("stdout missing trace OK:\n%s", stdout)
	}
	for _, phase := range []string{"validate", "segment", "search", "disambiguate"} {
		if !strings.Contains(stdout, phase) {
			t.Fatalf("stdout missing phase %q:\n%s", phase, stdout)
		}
	}
}

func TestStreamOK(t *testing.T) {
	code, stdout, stderr := runTrace(t, "-in", "testdata/stream.jsonl", "-depth", "0")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "3 traces checked, 0 bad") {
		t.Fatalf("stdout = %s, want 3 traces checked", stdout)
	}
	if !strings.Contains(stdout, "trace OK") {
		t.Fatalf("stdout missing trace OK:\n%s", stdout)
	}
}

// TestCorruptStreamContinues is the satellite regression: a stream with
// a truncated line and a garbage line exits non-zero with line-numbered
// diagnostics, and still validates every well-formed line around them.
func TestCorruptStreamContinues(t *testing.T) {
	code, stdout, stderr := runTrace(t, "-in", "testdata/corrupt.jsonl", "-depth", "0")
	if code == 0 {
		t.Fatal("corrupted stream exited 0")
	}
	// The two bad lines are called out by number.
	if !strings.Contains(stderr, "corrupt.jsonl:2:") {
		t.Fatalf("stderr missing diagnostic for truncated line 2:\n%s", stderr)
	}
	if !strings.Contains(stderr, "corrupt.jsonl:4:") {
		t.Fatalf("stderr missing diagnostic for garbage line 4:\n%s", stderr)
	}
	if !strings.Contains(stderr, "truncated") {
		t.Fatalf("stderr does not name the truncation:\n%s", stderr)
	}
	// The scan did not abort: the valid traces on lines 1, 3 and 5 were
	// all checked.
	if !strings.Contains(stdout, "3 traces checked, 2 bad") {
		t.Fatalf("stdout = %s, want 3 traces checked, 2 bad", stdout)
	}
	for _, doc := range []string{"doc-1", "doc-3", "doc-4"} {
		if !strings.Contains(stdout, doc) {
			t.Fatalf("valid trace %s not summarised after corrupt line:\n%s", doc, stdout)
		}
	}
}

func TestInvalidTraceStructureFails(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bad.json"
	// Child exceeds parent and the extract span is missing entirely.
	if err := os.WriteFile(path, []byte(`{"name":"vs2 x","start":"2026-08-06T10:00:00Z","duration_ns":100,"children":[{"name":"mystery","start":"2026-08-06T10:00:00Z","duration_ns":200}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runTrace(t, "-in", path)
	if code == 0 {
		t.Fatal("structurally invalid trace exited 0")
	}
	if !strings.Contains(stderr, "exceeds parent") || !strings.Contains(stderr, "no extract span") {
		t.Fatalf("stderr missing invariant diagnostics:\n%s", stderr)
	}
}

func TestMissingFlagExits2(t *testing.T) {
	code, _, stderr := runTrace(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
	}
}

// TestStitchedStreamOK validates a vs2d-style stitched stream: extract
// found deep under route → worker, cross-process parentage consistent,
// and a replayed worker tree exempt from the pipeline-phase checks.
func TestStitchedStreamOK(t *testing.T) {
	code, stdout, stderr := runTrace(t, "-in", "testdata/stitched.jsonl", "-depth", "0")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "2 traces checked, 0 bad") {
		t.Fatalf("stdout = %s, want 2 traces checked", stdout)
	}
	// The deep extract was found and its phases summarised.
	if !strings.Contains(stdout, "segment") {
		t.Fatalf("stdout missing phase breakdown for stitched trace:\n%s", stdout)
	}
}

// TestOrphanedSpansDiagnosed is the satellite contract: top-level worker
// trees that were never grafted exit non-zero with line-numbered
// diagnostics distinguishing a mis-graft (parent seen elsewhere) from a
// lost parent (ID never seen).
func TestOrphanedSpansDiagnosed(t *testing.T) {
	code, stdout, stderr := runTrace(t, "-in", "testdata/orphans.jsonl", "-depth", "0")
	if code == 0 {
		t.Fatal("stream with orphaned spans exited 0")
	}
	if !strings.Contains(stderr, `orphans.jsonl:2: orphaned span "worker doc-9"`) ||
		!strings.Contains(stderr, `parent span "fe-1" exists (line 1)`) {
		t.Fatalf("stderr missing mis-graft diagnostic for line 2:\n%s", stderr)
	}
	if !strings.Contains(stderr, `orphans.jsonl:3: orphaned span "worker doc-8"`) ||
		!strings.Contains(stderr, `parent span ID "fe-99" never seen`) {
		t.Fatalf("stderr missing never-seen diagnostic for line 3:\n%s", stderr)
	}
	if !strings.Contains(stdout, "3 traces checked, 2 bad") {
		t.Fatalf("stdout = %s, want 3 traces checked, 2 bad", stdout)
	}
}

// TestParentageMismatchFails: a worker tree grafted under the wrong
// route span (parent_span disagrees with the structural parent's
// span_id) is a stitching bug and must fail validation.
func TestParentageMismatchFails(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/mismatch.json"
	tree := `{"name":"vs2d x","start":"2026-08-06T10:00:00Z","duration_ns":1000000,"children":[` +
		`{"name":"route","start":"2026-08-06T10:00:00Z","duration_ns":900000,"attrs":{"span_id":"fe-1"},"children":[` +
		`{"name":"worker x","start":"2026-08-06T10:00:00Z","duration_ns":1000,"attrs":{"parent_span":"fe-2","replayed":true}}]}]}`
	if err := os.WriteFile(path, []byte(tree), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runTrace(t, "-in", path)
	if code == 0 {
		t.Fatal("mismatched parentage exited 0")
	}
	if !strings.Contains(stderr, `claims parent span "fe-2"`) || !strings.Contains(stderr, `span_id "fe-1"`) {
		t.Fatalf("stderr missing parentage diagnostic:\n%s", stderr)
	}
}

// TestSingleOrphanFails: even in single-document mode a root that claims
// a parent is an orphan — its front-end half is missing.
func TestSingleOrphanFails(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/orphan.json"
	tree := `{"name":"worker y","start":"2026-08-06T10:00:00Z","duration_ns":1000,"attrs":{"parent_span":"fe-7","replayed":true}}`
	if err := os.WriteFile(path, []byte(tree), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runTrace(t, "-in", path)
	if code == 0 {
		t.Fatal("orphaned single trace exited 0")
	}
	if !strings.Contains(stderr, `parent span ID "fe-7" never seen`) {
		t.Fatalf("stderr missing orphan diagnostic:\n%s", stderr)
	}
}
