// Command vs2trace validates and summarises trace files written by
// `vs2 -trace` (one indented JSON span tree), `vs2serve -trace` (a
// JSONL stream, one compact span tree per line), or `vs2d -trace` (a
// JSONL stream of stitched front-end/worker trees). It checks the
// structural invariants of each span tree — every child fits inside its
// parent's duration, the extract span is present (at any depth; a
// stitched tree nests it under route → worker), and the per-phase
// durations account for the run's wall-clock to within 10% — then
// prints a flame-style summary. A violated invariant or a malformed
// line exits non-zero, so the `make trace-demo` target doubles as an
// end-to-end check of the tracing layer.
//
// Stitched traces get two additional checks. Cross-process parentage:
// any span carrying a parent_span attribute must sit structurally under
// a span whose span_id attribute matches it — a worker tree grafted
// under the wrong route span is a stitching bug, not a cosmetic one.
// Orphans: a top-level span carrying parent_span is a worker tree the
// front end never claimed; it is reported with its line number and
// whether its parent span ID exists elsewhere in the stream (mis-graft)
// or was never seen at all (lost front-end span), and exits non-zero.
// A worker tree whose root carries replayed=true answered from its
// journal without re-running the pipeline, so it is exempt from the
// extract/phase requirements.
//
// Malformed or truncated lines in a stream do not abort the run: each
// gets a line-numbered diagnostic on stderr, the remaining lines are
// still validated, and the exit code reports the failure at the end.
//
// Usage:
//
//	vs2trace -in trace.json
//	vs2trace -in traces.jsonl -depth 0
//	vs2trace -in trace.json -depth 3
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"vs2"
)

// phases are the direct children the extract span must carry, in
// pipeline order.
var phases = []string{"validate", "segment", "search", "disambiguate"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vs2trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in    = fs.String("in", "", "trace JSON (or JSONL stream) written by vs2 -trace / vs2serve -trace")
		depth = fs.Int("depth", 2, "span tree depth to print (0 = no tree)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		fmt.Fprintln(stderr, "vs2trace: -in is required")
		fs.Usage()
		return 2
	}

	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(stderr, "vs2trace:", err)
		return 1
	}

	// A file from `vs2 -trace` is one (indented) JSON document; try that
	// first. Anything else is treated as a JSONL stream with per-line
	// recovery.
	var root vs2.SpanSnapshot
	if err := json.Unmarshal(data, &root); err == nil {
		st := newStitchState()
		st.collect(&root, 1)
		bad := checkTrace(&root, *depth, stdout, stderr)
		if st.report(*in, stderr) > 0 {
			bad = true
		}
		if bad {
			return 1
		}
		fmt.Fprintln(stdout, "trace OK")
		return 0
	}

	return runStream(*in, data, *depth, stdout, stderr)
}

// runStream validates a JSONL trace stream line by line. A line that is
// not a complete, well-formed span tree produces a line-numbered
// diagnostic and a non-zero exit, but never stops the scan: every
// remaining line is still checked.
func runStream(name string, data []byte, depth int, stdout, stderr io.Writer) int {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var (
		line   int
		traces int
		bad    int
	)
	st := newStitchState()
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		var root vs2.SpanSnapshot
		if err := json.Unmarshal(text, &root); err != nil {
			bad++
			fmt.Fprintf(stderr, "vs2trace: %s:%d: malformed span line: %v\n", name, line, diagnose(text, err))
			continue
		}
		traces++
		st.collect(&root, line)
		if checkTrace(&root, depth, stdout, stderr) {
			bad++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(stderr, "vs2trace: %s:%d: %v\n", name, line+1, err)
		return 1
	}
	// Orphans are judged only once the whole stream has been scanned:
	// "never seen" must mean never, not "not yet".
	bad += st.report(name, stderr)
	if traces == 0 && bad == 0 {
		fmt.Fprintf(stderr, "vs2trace: %s: no traces found\n", name)
		return 1
	}
	fmt.Fprintf(stdout, "%d traces checked, %d bad\n", traces, bad)
	if bad > 0 {
		return 1
	}
	fmt.Fprintln(stdout, "trace OK")
	return 0
}

// diagnose augments a JSON error with what makes it actionable in a
// stream: truncation is named as such, and syntax errors carry the
// in-line byte offset.
func diagnose(line []byte, err error) string {
	var syn *json.SyntaxError
	switch {
	case err == io.ErrUnexpectedEOF:
		return "truncated JSON"
	case json.Valid(line):
		return err.Error()
	case errorsAsSyntax(err, &syn):
		if syn.Offset >= int64(len(line)) {
			return fmt.Sprintf("truncated JSON (ends at byte %d)", syn.Offset)
		}
		return fmt.Sprintf("%v (at byte %d)", syn, syn.Offset)
	default:
		return err.Error()
	}
}

func errorsAsSyntax(err error, target **json.SyntaxError) bool {
	if s, ok := err.(*json.SyntaxError); ok {
		*target = s
		return true
	}
	return false
}

// checkTrace validates one span tree and prints its summary. It reports
// whether any invariant was violated.
func checkTrace(root *vs2.SpanSnapshot, depth int, stdout, stderr io.Writer) bool {
	var problems []string
	checkNesting(root, &problems)
	checkParentage(root, &problems)

	// A stitched tree nests extract under route → worker, so the lookup
	// descends; the direct-child preference keeps flat traces unambiguous.
	run := findDeep(root, "extract")
	if run == nil {
		if !hasReplayed(root) {
			problems = append(problems, "no extract span in trace")
		}
	} else {
		var phaseSum int64
		for _, name := range phases {
			ps := find(run, name)
			if ps == nil {
				problems = append(problems, fmt.Sprintf("extract span missing %q phase", name))
				continue
			}
			phaseSum += ps.DurationNS
		}
		if run.DurationNS <= 0 {
			problems = append(problems, "extract span has no duration")
		} else if gap := run.DurationNS - phaseSum; gap < 0 || float64(gap) > 0.10*float64(run.DurationNS) {
			problems = append(problems, fmt.Sprintf(
				"phase durations (%.2fms) do not account for the run (%.2fms) within 10%%",
				float64(phaseSum)/1e6, float64(run.DurationNS)/1e6))
		}
	}

	spans, events := count(root)
	fmt.Fprintf(stdout, "%s: %d spans, %d events, %.2fms total\n", root.Name, spans, events, float64(root.DurationNS)/1e6)
	if run != nil {
		printPhases(stdout, run)
	}
	if depth > 0 {
		printTree(stdout, root, 0, depth)
	}

	for _, p := range problems {
		fmt.Fprintln(stderr, "vs2trace: INVALID:", p)
	}
	return len(problems) > 0
}

// checkNesting verifies every child span's duration fits inside its
// parent's.
func checkNesting(s *vs2.SpanSnapshot, problems *[]string) {
	for i := range s.Children {
		c := &s.Children[i]
		if c.DurationNS > s.DurationNS {
			*problems = append(*problems, fmt.Sprintf(
				"span %q (%.2fms) exceeds parent %q (%.2fms)",
				c.Name, float64(c.DurationNS)/1e6, s.Name, float64(s.DurationNS)/1e6))
		}
		checkNesting(c, problems)
	}
}

// checkParentage verifies the cross-process stitch: a span that claims a
// parent via its parent_span attribute must sit directly under the span
// whose span_id attribute matches. The root's own claim (an orphan) is
// judged at stream scope, where "never seen" can mean something.
func checkParentage(s *vs2.SpanSnapshot, problems *[]string) {
	for i := range s.Children {
		c := &s.Children[i]
		if want, ok := attrString(c, "parent_span"); ok {
			if id, _ := attrString(s, "span_id"); id != want {
				*problems = append(*problems, fmt.Sprintf(
					"span %q claims parent span %q but is stitched under %q (span_id %q)",
					c.Name, want, s.Name, id))
			}
		}
		checkParentage(c, problems)
	}
}

// stitchState accumulates what orphan diagnosis needs across a whole
// stream: where each span_id first appeared, and every top-level span
// that claims a parent.
type stitchState struct {
	ids     map[string]int // span_id attribute -> first line seen
	orphans []orphanSpan
}

type orphanSpan struct {
	line   int
	name   string
	parent string
}

func newStitchState() *stitchState {
	return &stitchState{ids: map[string]int{}}
}

// collect indexes one tree's span_ids and records the root as an orphan
// if it claims a parent — a worker tree the stitcher failed to graft.
func (st *stitchState) collect(root *vs2.SpanSnapshot, line int) {
	var walk func(s *vs2.SpanSnapshot)
	walk = func(s *vs2.SpanSnapshot) {
		if id, ok := attrString(s, "span_id"); ok {
			if _, seen := st.ids[id]; !seen {
				st.ids[id] = line
			}
		}
		for i := range s.Children {
			walk(&s.Children[i])
		}
	}
	walk(root)
	if parent, ok := attrString(root, "parent_span"); ok {
		st.orphans = append(st.orphans, orphanSpan{line: line, name: root.Name, parent: parent})
	}
}

// report prints one line-numbered diagnostic per orphan and returns the
// orphan count. The distinction matters for debugging: a parent seen
// elsewhere means the stitcher failed to graft; never seen means the
// front-end half of the trace is missing entirely.
func (st *stitchState) report(name string, stderr io.Writer) int {
	for _, o := range st.orphans {
		if seenAt, ok := st.ids[o.parent]; ok {
			fmt.Fprintf(stderr, "vs2trace: %s:%d: orphaned span %q: parent span %q exists (line %d) but the span was not stitched under it\n",
				name, o.line, o.name, o.parent, seenAt)
		} else {
			fmt.Fprintf(stderr, "vs2trace: %s:%d: orphaned span %q: parent span ID %q never seen in the stream\n",
				name, o.line, o.name, o.parent)
		}
	}
	return len(st.orphans)
}

// attrString reads a non-empty string attribute.
func attrString(s *vs2.SpanSnapshot, key string) (string, bool) {
	v, ok := s.Attrs[key].(string)
	return v, ok && v != ""
}

// hasReplayed reports whether any span in the tree is marked
// replayed=true: the answer came from a journal, no pipeline ran.
func hasReplayed(s *vs2.SpanSnapshot) bool {
	if r, ok := s.Attrs["replayed"].(bool); ok && r {
		return true
	}
	for i := range s.Children {
		if hasReplayed(&s.Children[i]) {
			return true
		}
	}
	return false
}

func find(s *vs2.SpanSnapshot, name string) *vs2.SpanSnapshot {
	for i := range s.Children {
		if s.Children[i].Name == name {
			return &s.Children[i]
		}
	}
	return nil
}

// findDeep prefers a direct child named name, then descends breadth-ish:
// each child's subtree in order. Stitched vs2d trees carry extract three
// levels down (route → worker → extract); flat traces hit the fast path.
func findDeep(s *vs2.SpanSnapshot, name string) *vs2.SpanSnapshot {
	if c := find(s, name); c != nil {
		return c
	}
	for i := range s.Children {
		if c := findDeep(&s.Children[i], name); c != nil {
			return c
		}
	}
	return nil
}

func count(s *vs2.SpanSnapshot) (spans, events int) {
	spans, events = 1, len(s.Events)
	for i := range s.Children {
		cs, ce := count(&s.Children[i])
		spans += cs
		events += ce
	}
	return spans, events
}

// printPhases renders the extract span's phase breakdown with share of
// the run's wall-clock.
func printPhases(w io.Writer, run *vs2.SpanSnapshot) {
	for _, name := range phases {
		ps := find(run, name)
		if ps == nil {
			continue
		}
		share := 0.0
		if run.DurationNS > 0 {
			share = 100 * float64(ps.DurationNS) / float64(run.DurationNS)
		}
		fmt.Fprintf(w, "  %-14s %8.2fms  %5.1f%%\n", name, float64(ps.DurationNS)/1e6, share)
	}
}

// printTree renders the span tree to maxDepth, widest spans first,
// collapsing same-named siblings past the first three.
func printTree(w io.Writer, s *vs2.SpanSnapshot, depth, maxDepth int) {
	attrs := ""
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%v", k, s.Attrs[k]))
		}
		attrs = "  {" + strings.Join(parts, " ") + "}"
	}
	fmt.Fprintf(w, "%s%-*s %8.2fms%s\n", strings.Repeat("  ", depth), 20-2*depth, s.Name, float64(s.DurationNS)/1e6, attrs)
	if depth+1 > maxDepth {
		return
	}
	seen := map[string]int{}
	for i := range s.Children {
		c := &s.Children[i]
		seen[c.Name]++
		if n := seen[c.Name]; n == 4 {
			fmt.Fprintf(w, "%s… more %q spans\n", strings.Repeat("  ", depth+1), c.Name)
		}
		if seen[c.Name] >= 4 {
			continue
		}
		printTree(w, c, depth+1, maxDepth)
	}
}
