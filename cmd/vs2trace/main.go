// Command vs2trace validates and summarises a trace file written by
// `vs2 -trace`. It checks the structural invariants of the span tree —
// every child fits inside its parent's duration, the extract span is
// present, and the per-phase durations account for the run's wall-clock
// to within 10% — then prints a flame-style summary. A violated
// invariant exits non-zero, so the `make trace-demo` target doubles as
// an end-to-end check of the tracing layer.
//
// Usage:
//
//	vs2trace -in trace.json
//	vs2trace -in trace.json -depth 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"vs2"
)

// phases are the direct children the extract span must carry, in
// pipeline order.
var phases = []string{"validate", "segment", "search", "disambiguate"}

func main() {
	var (
		in    = flag.String("in", "", "trace JSON written by vs2 -trace")
		depth = flag.Int("depth", 2, "span tree depth to print (0 = no tree)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "vs2trace: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	var root vs2.SpanSnapshot
	if err := json.Unmarshal(data, &root); err != nil {
		fatal(fmt.Errorf("%s: not a trace: %w", *in, err))
	}

	var problems []string
	checkNesting(&root, &problems)

	run := find(&root, "extract")
	if run == nil {
		problems = append(problems, "no extract span in trace")
	} else {
		var phaseSum int64
		for _, name := range phases {
			ps := find(run, name)
			if ps == nil {
				problems = append(problems, fmt.Sprintf("extract span missing %q phase", name))
				continue
			}
			phaseSum += ps.DurationNS
		}
		if run.DurationNS <= 0 {
			problems = append(problems, "extract span has no duration")
		} else if gap := run.DurationNS - phaseSum; gap < 0 || float64(gap) > 0.10*float64(run.DurationNS) {
			problems = append(problems, fmt.Sprintf(
				"phase durations (%.2fms) do not account for the run (%.2fms) within 10%%",
				float64(phaseSum)/1e6, float64(run.DurationNS)/1e6))
		}
	}

	spans, events := count(&root)
	fmt.Printf("%s: %d spans, %d events, %.2fms total\n", root.Name, spans, events, float64(root.DurationNS)/1e6)
	if run != nil {
		printPhases(run)
	}
	if *depth > 0 {
		printTree(&root, 0, *depth)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "vs2trace: INVALID:", p)
		}
		os.Exit(1)
	}
	fmt.Println("trace OK")
}

// checkNesting verifies every child span's duration fits inside its
// parent's.
func checkNesting(s *vs2.SpanSnapshot, problems *[]string) {
	for i := range s.Children {
		c := &s.Children[i]
		if c.DurationNS > s.DurationNS {
			*problems = append(*problems, fmt.Sprintf(
				"span %q (%.2fms) exceeds parent %q (%.2fms)",
				c.Name, float64(c.DurationNS)/1e6, s.Name, float64(s.DurationNS)/1e6))
		}
		checkNesting(c, problems)
	}
}

func find(s *vs2.SpanSnapshot, name string) *vs2.SpanSnapshot {
	for i := range s.Children {
		if s.Children[i].Name == name {
			return &s.Children[i]
		}
	}
	return nil
}

func count(s *vs2.SpanSnapshot) (spans, events int) {
	spans, events = 1, len(s.Events)
	for i := range s.Children {
		cs, ce := count(&s.Children[i])
		spans += cs
		events += ce
	}
	return spans, events
}

// printPhases renders the extract span's phase breakdown with share of
// the run's wall-clock.
func printPhases(run *vs2.SpanSnapshot) {
	for _, name := range phases {
		ps := find(run, name)
		if ps == nil {
			continue
		}
		share := 0.0
		if run.DurationNS > 0 {
			share = 100 * float64(ps.DurationNS) / float64(run.DurationNS)
		}
		fmt.Printf("  %-14s %8.2fms  %5.1f%%\n", name, float64(ps.DurationNS)/1e6, share)
	}
}

// printTree renders the span tree to maxDepth, widest spans first,
// collapsing same-named siblings past the first three.
func printTree(s *vs2.SpanSnapshot, depth, maxDepth int) {
	attrs := ""
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%v", k, s.Attrs[k]))
		}
		attrs = "  {" + strings.Join(parts, " ") + "}"
	}
	fmt.Printf("%s%-*s %8.2fms%s\n", strings.Repeat("  ", depth), 20-2*depth, s.Name, float64(s.DurationNS)/1e6, attrs)
	if depth+1 > maxDepth {
		return
	}
	seen := map[string]int{}
	for i := range s.Children {
		c := &s.Children[i]
		seen[c.Name]++
		if n := seen[c.Name]; n == 4 {
			fmt.Printf("%s… more %q spans\n", strings.Repeat("  ", depth+1), c.Name)
		}
		if seen[c.Name] >= 4 {
			continue
		}
		printTree(c, depth+1, maxDepth)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vs2trace:", err)
	os.Exit(1)
}
