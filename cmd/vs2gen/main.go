// Command vs2gen generates the synthetic experimental corpora (the D1/D2/D3
// equivalents of Section 6.1) as labelled-document JSON files.
//
// Usage:
//
//	vs2gen -dataset d2 -n 50 -out ./corpus          # 50 event posters
//	vs2gen -dataset d1 -n 10 -seed 7 -out ./forms   # 10 tax forms
//	vs2gen -dataset d3 -n 1 -noise -out -           # one noisy flyer to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vs2"
	"vs2/internal/doc"
)

func main() {
	var (
		dataset = flag.String("dataset", "d2", "dataset: d1 | d2 | d3")
		n       = flag.Int("n", 10, "number of documents")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", ".", "output directory, or - for stdout")
		noise   = flag.Bool("noise", false, "pass documents through the OCR channel of their capture mode")
	)
	flag.Parse()

	var docs []vs2.Labeled
	switch *dataset {
	case "d1":
		docs = vs2.GenerateTaxForms(*n, *seed)
	case "d2":
		docs = vs2.GenerateEventPosters(*n, *seed)
	case "d3":
		docs = vs2.GenerateRealEstateFlyers(*n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "vs2gen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	for i, l := range docs {
		if *noise {
			l = vs2.OCRNoise(l, *seed+int64(i))
		}
		data, err := doc.EncodeLabeled(&l)
		if err != nil {
			fatal(err)
		}
		if *out == "-" {
			os.Stdout.Write(data)
			os.Stdout.Write([]byte("\n"))
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, l.Doc.ID+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
	}
	if *out != "-" {
		fmt.Printf("wrote %d %s documents to %s\n", len(docs), *dataset, *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vs2gen:", err)
	os.Exit(1)
}
