// Command vs2bench regenerates the evaluation tables of the paper
// (Tables 5–9 of Section 6) on the synthetic corpora, plus the paired
// significance test of Section 6.4 and the holdout-corpus summary of
// Table 2.
//
// Usage:
//
//	vs2bench                       # every table, default sizes
//	vs2bench -table 5 -n 120       # one table, larger corpus
//	vs2bench -ttest                # significance tests only
//	vs2bench -holdout              # holdout corpus construction summary
//	vs2bench -patterns             # print the Table 3/4 pattern inventory
//	vs2bench -segbench             # segmentation benchmark matrix -> BENCH_segment.json
//	vs2bench -benchgate            # gate current segmentation perf against the baseline
//	vs2bench -obsbench             # telemetry-overhead benchmark -> BENCH_obs.json
//	vs2bench -obsgate              # fail if metrics+tracing cost >5% ns/op
//	vs2bench -templatebench        # template-cache benchmark -> BENCH_template.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vs2/internal/eval"
	"vs2/internal/holdout"
	"vs2/internal/pattern"
)

func main() {
	var (
		table    = flag.Int("table", 0, "run only this table (5, 6, 7, 8 or 9); 0 = all")
		n        = flag.Int("n", 60, "documents per dataset")
		seed     = flag.Int64("seed", 1, "generation/noise seed")
		ttest    = flag.Bool("ttest", false, "run the Section 6.4 significance tests")
		holdoutF = flag.Bool("holdout", false, "summarise holdout corpus construction (Table 2)")
		patterns = flag.Bool("patterns", false, "print the Table 3/4 pattern inventory")
		ext      = flag.String("ext", "", "extension experiment: cutmodel | weights | noise | rotation | fit")
		csvOut   = flag.String("csv", "", "also write table results as CSV files with this prefix")
		segbench = flag.Bool("segbench", false, "run the segmentation benchmark matrix and write the baseline JSON")
		gate     = flag.Bool("benchgate", false, "re-run the segmentation benchmarks and gate against the committed baseline")
		benchOut = flag.String("benchout", segBenchFile, "baseline path for -segbench / -benchgate")
		obsbench = flag.Bool("obsbench", false, "run the telemetry-overhead benchmark and write its baseline JSON")
		obsgate  = flag.Bool("obsgate", false, "re-run the telemetry-overhead benchmark and fail if obs costs >5% ns/op")
		obsOut   = flag.String("obsout", obsBenchFile, "baseline path for -obsbench")
		tplbench = flag.Bool("templatebench", false, "run the template-cache benchmark and write its baseline JSON")
		tplOut   = flag.String("templateout", templateBenchFile, "baseline path for -templatebench")
	)
	flag.Parse()
	opts := eval.Options{N: *n, Seed: *seed}

	switch {
	case *segbench:
		runSegBench(*benchOut)
		return
	case *gate:
		runBenchGate(*benchOut)
		runTemplateGate()
		return
	case *obsbench:
		runObsBench(*obsOut)
		return
	case *tplbench:
		runTemplateBench(*tplOut)
		return
	case *obsgate:
		runObsGate()
		return
	case *ext != "":
		runExtension(*ext, opts)
		return
	case *ttest:
		runTTests(opts)
		return
	case *holdoutF:
		runHoldout(*seed)
		return
	case *patterns:
		printPatterns()
		return
	}

	run := func(id int, f func()) {
		if *table != 0 && *table != id {
			return
		}
		t0 := time.Now()
		f()
		fmt.Printf("(table %d: %d docs/dataset, %.1fs)\n\n", id, *n, time.Since(t0).Seconds())
	}
	run(5, func() {
		res := eval.RunTable5(opts)
		fmt.Println(eval.FormatTable5(res))
		writeCSV(*csvOut, "table5", func(w *os.File) error { return eval.WriteMethodCSV(w, res) })
	})
	run(6, func() {
		fmt.Println(eval.FormatPerEntity("Table 6: End-to-end evaluation of VS2 on D2", eval.RunPerEntity("d2", opts)))
	})
	run(7, func() {
		res := eval.RunTable7(opts)
		fmt.Println(eval.FormatTable7(res))
		writeCSV(*csvOut, "table7", func(w *os.File) error { return eval.WriteMethodCSV(w, res) })
	})
	run(8, func() {
		fmt.Println(eval.FormatPerEntity("Table 8: End-to-end evaluation of VS2 on D3", eval.RunPerEntity("d3", opts)))
	})
	run(9, func() { fmt.Println(eval.FormatTable9(eval.RunTable9(opts))) })
}

func writeCSV(prefix, name string, write func(*os.File) error) {
	if prefix == "" {
		return
	}
	f, err := os.Create(prefix + name + ".csv")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vs2bench:", err)
		return
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "vs2bench:", err)
	}
}

func runExtension(name string, opts eval.Options) {
	switch name {
	case "cutmodel":
		fmt.Println("Cut-model ablation on D2 under rotation: drifting seams vs straight cuts (segmentation F1)")
		for _, r := range eval.RunCutModelAblation(opts) {
			fmt.Printf("  %4.0f°: seam %.2f%%  straight %.2f%%\n",
				r.Degrees, r.Seam.F1()*100, r.Straight.F1()*100)
		}
	case "weights":
		fmt.Println("Eq. 2 weight-profile sweep (end-to-end F1)")
		for _, r := range eval.RunWeightProfiles(opts) {
			fmt.Printf("  %s: balanced %.2f%%  ornate %.2f%%  verbose %.2f%%\n",
				r.Dataset, r.F1["balanced"]*100, r.F1["ornate"]*100, r.F1["verbose"]*100)
		}
	case "noise":
		fmt.Println("OCR-noise sweep on D2 (end-to-end F1, VS2 vs text-only)")
		for _, p := range eval.RunNoiseSweep(opts) {
			fmt.Printf("  %-7s vs2 %.2f%%  text-only %.2f%%\n",
				p.Label, p.VS2.F1()*100, p.Text.F1()*100)
		}
	case "rotation":
		fmt.Println("Rotation sweep on D2 (segmentation F1; the paper claims robustness to 45°)")
		for _, p := range eval.RunRotationSweep(opts) {
			fmt.Printf("  %4.0f°: %.2f%%\n", p.Degrees, p.PR.F1()*100)
		}
	case "fit":
		fmt.Println("Learned Eq. 2 weights (Section 7 future work): grid search on the simplex")
		for _, ds := range []string{"d1", "d2", "d3"} {
			w, f1 := eval.FitWeights(ds, opts)
			fmt.Printf("  %s: α=%.1f β=%.1f γ=%.1f ν=%.1f  (F1 %.2f%%)\n",
				ds, w.Alpha, w.Beta, w.Gamma, w.Nu, f1*100)
		}
	default:
		fmt.Fprintf(os.Stderr, "vs2bench: unknown extension %q\n", name)
		os.Exit(2)
	}
}

func runTTests(opts eval.Options) {
	fmt.Println("Section 6.4: paired t-test, per-document F1, VS2 vs text-only")
	for _, ds := range []string{"d1", "d2", "d3"} {
		res, err := eval.SignificanceVS2VsTextOnly(ds, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vs2bench: %s: %v\n", ds, err)
			continue
		}
		verdict := "significant (p < 0.05)"
		if res.P >= 0.05 {
			verdict = "not significant"
		}
		fmt.Printf("  %s: t = %.3f, df = %.0f, p = %.4g — %s\n", ds, res.T, res.DF, res.P, verdict)
	}
}

func runHoldout(seed int64) {
	fmt.Println("Table 2: holdout corpus construction (simulated public-domain sites)")
	for _, c := range []struct {
		name  string
		sites []holdout.Site
	}{
		{"D1 (irs.gov)", holdout.D1Sites()},
		{"D2 (allevents.in, dl.acm.org)", holdout.D2Sites()},
		{"D3 (fsbo.com, homesbyowner.com)", holdout.D3Sites()},
	} {
		corpus := holdout.Build(c.sites, holdout.BuildOptions{Seed: seed})
		fmt.Printf("\n%s: %d tuples, %d entities\n", c.name, corpus.Size(), len(corpus.Entities()))
		if len(corpus.Entities()) <= 12 {
			fmt.Print(corpus)
		}
	}
}

func printPatterns() {
	show := func(title string, sets []*pattern.Set) {
		fmt.Println(title)
		for _, s := range sets {
			fmt.Printf("  %s\n", s.Entity)
			for _, p := range s.Patterns {
				fmt.Printf("    - %s\n", p.Name())
			}
		}
		fmt.Println()
	}
	show("Table 3: event-poster patterns (D2)", pattern.EventPatterns())
	show("Table 4: real-estate patterns (D3)", pattern.RealEstatePatterns())
	fmt.Println("D1 uses exact descriptor matching over the per-face field inventory (vs2bench -holdout shows the corpus).")
}
