package main

// Telemetry-overhead benchmark and regression gate.
//
// -obsbench measures the full extraction pipeline twice over the same
// tax-form corpus: obs off (no Metrics registry, no trace on the
// context — every instrumentation site takes its nil-guarded fast path)
// and obs on (a registry receiving the per-phase histograms and
// counters, plus a per-document span tree that is finished and
// snapshotted after each run — exactly the work a vs2d worker does per
// document when the front end asks for telemetry). Both ns/op and their
// ratio go to BENCH_obs.json.
//
// -obsgate re-measures and fails if telemetry costs more than 5% ns/op.
// Absolute numbers are machine-dependent, so the gate judges the
// within-run ratio — the cost of the instrumentation itself, not the
// host. The two configurations are interleaved across rounds so load
// drift lands on both, each keeps its fastest round, and like
// -benchgate a failing measurement is repeated once before it can fail
// the build.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	vs2 "vs2"
)

const obsBenchFile = "BENCH_obs.json"

// obsOverheadTolerance is the satellite contract: telemetry may cost at
// most 5% ns/op over the uninstrumented pipeline.
const obsOverheadTolerance = 1.05

type obsBenchReport struct {
	Corpus        string  `json:"corpus"`
	HostCPUs      int     `json:"host_cpus"`
	ObsOffNsOp    int64   `json:"obs_off_ns_op"`
	ObsOnNsOp     int64   `json:"obs_on_ns_op"`
	OverheadRatio float64 `json:"overhead_ratio"`
}

func obsBenchCorpus() []*vs2.Document {
	labeled := vs2.GenerateTaxForms(1, 4)
	docs := make([]*vs2.Document, len(labeled))
	for i, l := range labeled {
		docs[i] = l.Doc
	}
	return docs
}

// measureObs benchmarks the pipeline with observability off and on,
// interleaved best-of-3.
func measureObs(docs []*vs2.Document) (off, on testing.BenchmarkResult) {
	ctx := context.Background()
	task := vs2.NISTTaxTask()

	pOff := vs2.NewPipeline(vs2.Config{Task: task})
	benchOff := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				pOff.ExtractContext(ctx, d) //nolint:errcheck
			}
		}
	}

	m := vs2.NewMetrics()
	pOn := vs2.NewPipeline(vs2.Config{Task: task, Metrics: m})
	benchOn := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				tr := vs2.NewTrace("bench " + d.ID)
				pOn.ExtractContext(vs2.WithTrace(ctx, tr), d) //nolint:errcheck
				tr.Finish()
				_ = tr.Snapshot()
			}
		}
	}

	const rounds = 3
	var bestOff, bestOn testing.BenchmarkResult
	for round := 0; round < rounds; round++ {
		if r := testing.Benchmark(benchOff); round == 0 || r.NsPerOp() < bestOff.NsPerOp() {
			bestOff = r
		}
		if r := testing.Benchmark(benchOn); round == 0 || r.NsPerOp() < bestOn.NsPerOp() {
			bestOn = r
		}
	}
	return bestOff, bestOn
}

func runObsBenchOnce() obsBenchReport {
	testing.Init()
	flag.Set("test.benchtime", "2s") //nolint:errcheck
	docs := obsBenchCorpus()
	off, on := measureObs(docs)
	rep := obsBenchReport{
		Corpus:        "GenerateTaxForms(1, 4)",
		HostCPUs:      runtime.NumCPU(),
		ObsOffNsOp:    off.NsPerOp(),
		ObsOnNsOp:     on.NsPerOp(),
		OverheadRatio: round2ratio(float64(on.NsPerOp()) / float64(off.NsPerOp())),
	}
	fmt.Printf("  obs off %s  obs on %s  overhead %.3fx\n",
		fmtNs(rep.ObsOffNsOp), fmtNs(rep.ObsOnNsOp), rep.OverheadRatio)
	return rep
}

// round2ratio keeps three decimals: a 5% tolerance needs finer grain
// than the 2-decimal speedups elsewhere in the reports.
func round2ratio(x float64) float64 { return float64(int(x*1000+0.5)) / 1000 }

func runObsBench(out string) {
	fmt.Println("Telemetry-overhead benchmark (metrics + tracing vs neither, best of 3 interleaved runs)")
	rep := runObsBenchOnce()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vs2bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vs2bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}

// runObsGate fails (exit 1) when the measured telemetry overhead
// exceeds the 5% ceiling, confirmed by one re-measurement.
func runObsGate() {
	fmt.Printf("Telemetry-overhead gate (ceiling: %.0f%% ns/op)\n", (obsOverheadTolerance-1)*100)
	rep := runObsBenchOnce()
	if rep.OverheadRatio > obsOverheadTolerance {
		fmt.Printf("overhead %.3fx above ceiling; re-measuring to rule out a noisy run\n", rep.OverheadRatio)
		rep = runObsBenchOnce()
	}
	if rep.OverheadRatio > obsOverheadTolerance {
		fmt.Fprintf(os.Stderr, "vs2bench: obs gate FAILED: telemetry overhead %.3fx exceeds %.2fx (confirmed by re-measurement)\n",
			rep.OverheadRatio, obsOverheadTolerance)
		os.Exit(1)
	}
	fmt.Println("obs gate passed")
}
