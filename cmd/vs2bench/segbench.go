package main

// Segmentation benchmark matrix and regression gate.
//
// -segbench measures VS2-Segment in three configurations — the preserved
// seed implementation (segment.NewReference), the optimised sequential
// path (Parallel: 1) and the branch-parallel path (Parallel: 8) — at
// GOMAXPROCS 1, 4 and 8 over a small tax-form corpus, and writes the
// matrix to BENCH_segment.json.
//
// -benchgate re-measures the same matrix and compares it against the
// committed baseline. Absolute ns/op are machine-dependent, so the gate
// compares *within-run ratios*: each configuration's ns/op divided by
// the reference ns/op measured in the same run on the same machine.
// Per-GOMAXPROCS ratios are printed for inspection but carry ~15%
// scheduler noise on loaded hosts, so the pass/fail decision uses the
// geometric mean of a configuration's ratios across the GOMAXPROCS
// matrix (per-cell noise is uncorrelated and averages out): a
// configuration whose mean ratio grew more than 10% over the committed
// baseline fails the gate, as does a parallel configuration at
// GOMAXPROCS >= 4 whose speedup over the reference drops below 2x — on
// hosts with fewer than 4 CPUs that floor is not gated at all and every
// run says so explicitly (the floor needs real parallelism; a pass on a
// starved host would be luck, not evidence). A failing gate re-measures
// once before reporting a regression, so a single anomalous run cannot
// fail the build on its own.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	vs2 "vs2"
	"vs2/internal/segment"
)

const segBenchFile = "BENCH_segment.json"

// segBenchProcs is the GOMAXPROCS matrix. On hosts with fewer CPUs the
// higher settings still exercise the scheduling path (goroutines
// multiplex onto the available cores); the committed speedups are
// therefore quoted against the reference implementation, not against
// ideal linear scaling.
var segBenchProcs = []int{1, 4, 8}

type segConfigResult struct {
	GoMaxProcs          int     `json:"gomaxprocs"`
	ReferenceNsOp       int64   `json:"reference_ns_op"`
	ReferenceAllocsOp   int64   `json:"reference_allocs_op"`
	SequentialNsOp      int64   `json:"sequential_ns_op"`
	SequentialAllocsOp  int64   `json:"sequential_allocs_op"`
	ParallelNsOp        int64   `json:"parallel_ns_op"`
	ParallelAllocsOp    int64   `json:"parallel_allocs_op"`
	SpeedupVsReference  float64 `json:"speedup_vs_reference"`
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
}

type segBenchReport struct {
	Corpus   string            `json:"corpus"`
	HostCPUs int               `json:"host_cpus"`
	Results  []segConfigResult `json:"results"`
}

func segBenchCorpus() []*vs2.Document {
	labeled := vs2.GenerateTaxForms(2, 5)
	docs := make([]*vs2.Document, len(labeled))
	for i, l := range labeled {
		docs[i] = l.Doc
	}
	return docs
}

// benchOnce runs one segmentation benchmark. The benchtime is raised
// from the 1s default so that even the slow reference implementation
// (~1s/op on the tax-form corpus) gets enough iterations per run for a
// stable ns/op — at 1s benchtime it ran 1-2 iterations and the
// quantization noise alone exceeded the gate tolerance.
func benchOnce(s *segment.Segmenter, docs []*vs2.Document) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				s.Blocks(d)
			}
		}
	})
}

// measureConfigs benchmarks all three segmenter configurations
// interleaved over several rounds — reference, sequential, parallel,
// then again — so machine-load drift during the run lands on every
// configuration rather than biasing whichever ran last. Each
// configuration keeps its fastest round (minimum ns/op filters the
// slow-outlier rounds that background load produces).
func measureConfigs(docs []*vs2.Document) (ref, seq, par testing.BenchmarkResult) {
	const rounds = 3
	segmenters := []*segment.Segmenter{
		segment.NewReference(segment.Options{}),
		segment.New(segment.Options{Parallel: 1}),
		segment.New(segment.Options{Parallel: 8}),
	}
	best := make([]testing.BenchmarkResult, len(segmenters))
	for round := 0; round < rounds; round++ {
		for i, s := range segmenters {
			r := benchOnce(s, docs)
			if round == 0 || r.NsPerOp() < best[i].NsPerOp() {
				best[i] = r
			}
		}
	}
	return best[0], best[1], best[2]
}

func runSegBenchMatrix() segBenchReport {
	testing.Init()
	flag.Set("test.benchtime", "5s")
	docs := segBenchCorpus()
	rep := segBenchReport{
		Corpus:   "GenerateTaxForms(2, 5)",
		HostCPUs: runtime.NumCPU(),
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range segBenchProcs {
		runtime.GOMAXPROCS(procs)
		refR, seqR, parR := measureConfigs(docs)
		r := segConfigResult{
			GoMaxProcs:         procs,
			ReferenceNsOp:      refR.NsPerOp(),
			ReferenceAllocsOp:  refR.AllocsPerOp(),
			SequentialNsOp:     seqR.NsPerOp(),
			SequentialAllocsOp: seqR.AllocsPerOp(),
			ParallelNsOp:       parR.NsPerOp(),
			ParallelAllocsOp:   parR.AllocsPerOp(),
		}
		r.SpeedupVsReference = round2(float64(r.ReferenceNsOp) / float64(r.ParallelNsOp))
		r.SpeedupVsSequential = round2(float64(r.SequentialNsOp) / float64(r.ParallelNsOp))
		rep.Results = append(rep.Results, r)
		fmt.Printf("GOMAXPROCS=%d  reference %s  sequential %s  parallel %s  speedup vs reference %.2fx (vs sequential %.2fx)\n",
			procs, fmtNs(r.ReferenceNsOp), fmtNs(r.SequentialNsOp), fmtNs(r.ParallelNsOp),
			r.SpeedupVsReference, r.SpeedupVsSequential)
	}
	return rep
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }

func fmtNs(ns int64) string {
	return fmt.Sprintf("%.2fms/op", float64(ns)/1e6)
}

func runSegBench(out string) {
	fmt.Printf("Segmentation benchmark matrix (corpus: tax forms, best of 3 runs per cell)\n")
	rep := runSegBenchMatrix()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vs2bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vs2bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}

// runBenchGate re-measures the matrix and fails (exit 1) on regression
// against the committed baseline.
func runBenchGate(baselinePath string) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vs2bench: no benchmark baseline: %v\n(run vs2bench -segbench to create one)\n", err)
		os.Exit(1)
	}
	var base segBenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "vs2bench: corrupt baseline %s: %v\n", baselinePath, err)
		os.Exit(1)
	}
	baseByProcs := map[int]segConfigResult{}
	for _, r := range base.Results {
		baseByProcs[r.GoMaxProcs] = r
	}

	fmt.Printf("Benchmark regression gate (baseline: %s, tolerance: 10%% on mean within-run ns/op ratios)\n", baselinePath)
	failures := gateOnce(baseByProcs)
	if failures > 0 {
		fmt.Printf("regression on first measurement; re-measuring to rule out a noisy run\n")
		failures = gateOnce(baseByProcs)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "vs2bench: bench gate FAILED (%d regressions, confirmed by re-measurement)\n", failures)
		os.Exit(1)
	}
	fmt.Println("bench gate passed")
}

// gateOnce runs one benchmark matrix and returns the number of
// regressions against the baseline.
func gateOnce(baseByProcs map[int]segConfigResult) int {
	cur := runSegBenchMatrix()

	const tolerance = 1.10
	failures := 0
	// Per-cell ratios, informational.
	curSeq, curPar := map[int]float64{}, map[int]float64{}
	baseSeq, basePar := map[int]float64{}, map[int]float64{}
	for _, r := range cur.Results {
		b, ok := baseByProcs[r.GoMaxProcs]
		if !ok {
			continue
		}
		curSeq[r.GoMaxProcs] = float64(r.SequentialNsOp) / float64(r.ReferenceNsOp)
		curPar[r.GoMaxProcs] = float64(r.ParallelNsOp) / float64(r.ReferenceNsOp)
		baseSeq[r.GoMaxProcs] = float64(b.SequentialNsOp) / float64(b.ReferenceNsOp)
		basePar[r.GoMaxProcs] = float64(b.ParallelNsOp) / float64(b.ReferenceNsOp)
		fmt.Printf("  GOMAXPROCS=%d sequential ns/op ratio vs reference: %.3f (baseline %.3f)\n",
			r.GoMaxProcs, curSeq[r.GoMaxProcs], baseSeq[r.GoMaxProcs])
		fmt.Printf("  GOMAXPROCS=%d parallel   ns/op ratio vs reference: %.3f (baseline %.3f)\n",
			r.GoMaxProcs, curPar[r.GoMaxProcs], basePar[r.GoMaxProcs])
		// The speedup floor is only meaningful where the host can actually
		// run 4 branches in parallel. On smaller hosts GOMAXPROCS beyond
		// the physical core count multiplexes goroutines without adding
		// parallelism, so the floor is skipped — loudly, and regardless of
		// what the measurement happened to read: a >= 2x number on a
		// 2-CPU host is scheduler luck, and silently "passing" it would
		// misreport the floor as enforced. host_cpus in the report
		// records the environment the baseline was measured on.
		if r.GoMaxProcs >= 4 {
			switch hostCPUs := runtime.NumCPU(); {
			case hostCPUs < 4:
				fmt.Printf("  GOMAXPROCS=%d parallel speedup floor (>= 2.0x vs reference) SKIPPED: host_cpus=%d, need >= 4 (measured %.2fx, not gated)\n",
					r.GoMaxProcs, hostCPUs, r.SpeedupVsReference)
			case r.SpeedupVsReference < 2.0:
				fmt.Printf("  GOMAXPROCS=%d parallel speedup vs reference %.2fx < 2.0x REGRESSION\n",
					r.GoMaxProcs, r.SpeedupVsReference)
				failures++
			default:
				fmt.Printf("  GOMAXPROCS=%d parallel speedup vs reference %.2fx >= 2.0x ok\n",
					r.GoMaxProcs, r.SpeedupVsReference)
			}
		}
	}
	// The pass/fail ratio check pools the matrix per configuration.
	check := func(what string, cur, base map[int]float64) {
		cg, bg := geomean(cur), geomean(base)
		if bg <= 0 || cg <= 0 {
			return
		}
		status := "ok"
		if cg > bg*tolerance {
			status = "REGRESSION"
			failures++
		}
		fmt.Printf("  %-10s mean ns/op ratio vs reference: %.3f (baseline %.3f) %s\n", what, cg, bg, status)
	}
	check("sequential", curSeq, baseSeq)
	check("parallel", curPar, basePar)
	return failures
}

func geomean(m map[int]float64) float64 {
	if len(m) == 0 {
		return 0
	}
	logSum := 0.0
	for _, v := range m {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(m)))
}
