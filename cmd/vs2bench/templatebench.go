package main

// Layout-template cache benchmark and regression gate.
//
// -templatebench measures what the cache actually buys on a
// template-heavy corpus: many documents that are jittered instances of
// a handful of recurring layouts — the workload the paper's
// template-reuse argument describes. Two comparisons go to
// BENCH_template.json:
//
//   - hit path vs cold segmentation: Fingerprint + Lookup (including
//     the remap onto the new document's geometry) against a full
//     VS2-Segment of the same document. This is the cache's core claim
//     — a hit skips segmentation — and the committed floor is 5x.
//   - warm pipeline vs cold pipeline: full ExtractContext with the
//     cache warm against the same pipeline with no cache, which shows
//     how much of end-to-end latency segmentation was.
//
// Absolute ns/op are machine-dependent, so the -benchgate extension
// judges the within-run hit-vs-cold ratio, not the committed numbers;
// both measurements run single-configuration in the same process, so
// the floor needs no host-CPU skip. A failing measurement is repeated
// once before it can fail the build, like the other gates.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	vs2 "vs2"
)

const templateBenchFile = "BENCH_template.json"

// templateSpeedupFloor is the committed contract: fingerprint + lookup
// + remap must beat a cold VS2-Segment by at least this factor on the
// template-heavy corpus.
const templateSpeedupFloor = 5.0

type templateBenchReport struct {
	Corpus    string `json:"corpus"`
	HostCPUs  int    `json:"host_cpus"`
	Templates int    `json:"templates"`
	Documents int    `json:"documents"`
	// ColdSegmentNsOp is one full VS2-Segment pass over the corpus;
	// HitPathNsOp is fingerprint+lookup+remap over the same corpus with
	// every template resident.
	ColdSegmentNsOp int64   `json:"cold_segment_ns_op"`
	HitPathNsOp     int64   `json:"hit_path_ns_op"`
	HitSpeedup      float64 `json:"hit_speedup_vs_cold_segment"`
	// Cold/WarmPipelineNsOp are full ExtractContext passes without and
	// with a warm cache.
	ColdPipelineNsOp int64   `json:"cold_pipeline_ns_op"`
	WarmPipelineNsOp int64   `json:"warm_pipeline_ns_op"`
	PipelineSpeedup  float64 `json:"pipeline_speedup"`
	// WarmHitRate is the hit rate of one fresh-cache pass over the
	// corpus: (documents - templates) / documents when every jittered
	// instance lands inside its template's tolerance band.
	WarmHitRate float64 `json:"warm_hit_rate"`
}

// templateBenchCorpus builds the template-heavy corpus: nTpl recurring
// single-column layouts, each rendered perInstance times with field
// values redrawn (same text shape) and geometry jittered by up to ±1.9
// units inside the default tolerance band (quantum/2 = 2). Layout
// design follows the differential suite's cacheability rules: 4-unit
// grid, two-element blocks, inter-block gaps past the Eq. 1 merge
// ceiling and distinct enough (>= 25%) that Algorithm 1 ranks the
// delimiters identically for every jittered instance.
func templateBenchCorpus(nTpl, perInstance int) []*vs2.Document {
	labels := [4]string{"Broker", "Phone", "Email", "Price"}
	names := []string{"Burke", "Hayes", "Lopez", "Mills", "Stone", "Drake"}
	var docs []*vs2.Document
	for tpl := 0; tpl < nTpl; tpl++ {
		for inst := 0; inst < perInstance; inst++ {
			rng := rand.New(rand.NewSource(int64(tpl)*1000 + int64(inst) + 1))
			jit := func() float64 { return rng.Float64()*3.8 - 1.9 }
			d := &vs2.Document{
				ID:     fmt.Sprintf("bench-t%d-i%d", tpl, inst),
				Width:  400,
				Height: 560,
			}
			font := []float64{10, 12, 14}[tpl%3]
			round4 := func(v float64) float64 { return float64(int((v+2)/4)) * 4 }
			addWord := func(x, y float64, text string, line int) {
				d.Elements = append(d.Elements, vs2.Element{
					ID:       len(d.Elements),
					Kind:     vs2.TextElement,
					Text:     text,
					Box:      vs2.Rect{X: x + jit(), Y: y + jit(), W: round4(float64(len(text)) * font * 0.55), H: round4(font)},
					FontSize: font,
					Line:     line,
				})
			}
			value := func(slot int) string {
				switch slot % 3 {
				case 0:
					return fmt.Sprintf("614-555-%04d", rng.Intn(10000))
				case 1:
					return fmt.Sprintf("$%d%d%d,900", 1+rng.Intn(9), rng.Intn(10), rng.Intn(10))
				default:
					return names[rng.Intn(len(names))]
				}
			}
			pitches := []float64{96, 128, 160}
			if tpl%2 == 1 {
				pitches = []float64{160, 128, 96}
			}
			y := 40 + 4*float64(tpl)
			for b := 0; b < 3+tpl%2; b++ {
				label := labels[b%4]
				addWord(40, y, label, b)
				addWord(40+round4(float64(len(label))*font*0.55)+4, y, value(b+tpl), b)
				if b < len(pitches) {
					y += pitches[b]
				}
			}
			docs = append(docs, d)
		}
	}
	return docs
}

// measureTemplate runs the four benchmarks interleaved best-of-3, so
// machine-load drift lands on every configuration.
func measureTemplate(docs []*vs2.Document, nTpl int) (coldSeg, hit, coldPipe, warmPipe testing.BenchmarkResult, hitRate float64) {
	ctx := context.Background()
	task := vs2.RealEstateTask()
	pCold := vs2.NewPipeline(vs2.Config{Task: task})

	// Warm one cache for the hit-path benchmark by segmenting each
	// document once; every template is then resident and every probe a
	// hit (Lookup validates the full signature, so a miss here would be
	// a corpus bug, reported instead of silently measured).
	hitCache := vs2.NewTemplateCache(nTpl*2, 0, nil)
	for _, d := range docs {
		fp := hitCache.Fingerprint(d)
		if _, ok := hitCache.Lookup(d, fp); !ok {
			hitCache.Insert(d, fp, pCold.Segment(d))
		}
	}

	benchColdSeg := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				pCold.Segment(d)
			}
		}
	}
	benchHit := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				fp := hitCache.Fingerprint(d)
				if _, ok := hitCache.Lookup(d, fp); !ok {
					b.Fatalf("corpus bug: %s missed a warm cache", d.ID)
				}
			}
		}
	}
	benchColdPipe := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				pCold.ExtractContext(ctx, d) //nolint:errcheck
			}
		}
	}
	warmCache := vs2.NewTemplateCache(nTpl*2, 0, nil)
	pWarm := vs2.NewPipeline(vs2.Config{Task: task, Templates: warmCache})
	for _, d := range docs { // warm-up pass: insert each template once
		pWarm.ExtractContext(ctx, d) //nolint:errcheck
	}
	st := warmCache.Stats()
	if probes := st.Hits + st.Misses; probes > 0 {
		hitRate = float64(st.Hits) / float64(probes)
	}
	benchWarmPipe := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				pWarm.ExtractContext(ctx, d) //nolint:errcheck
			}
		}
	}

	const rounds = 3
	benches := []func(*testing.B){benchColdSeg, benchHit, benchColdPipe, benchWarmPipe}
	best := make([]testing.BenchmarkResult, len(benches))
	for round := 0; round < rounds; round++ {
		for i, fn := range benches {
			if r := testing.Benchmark(fn); round == 0 || r.NsPerOp() < best[i].NsPerOp() {
				best[i] = r
			}
		}
	}
	return best[0], best[1], best[2], best[3], hitRate
}

func runTemplateBenchOnce() templateBenchReport {
	testing.Init()
	flag.Set("test.benchtime", "2s") //nolint:errcheck
	const nTpl, perInstance = 6, 16
	docs := templateBenchCorpus(nTpl, perInstance)
	coldSeg, hit, coldPipe, warmPipe, hitRate := measureTemplate(docs, nTpl)
	rep := templateBenchReport{
		Corpus:           fmt.Sprintf("templateBenchCorpus(%d, %d)", nTpl, perInstance),
		HostCPUs:         runtime.NumCPU(),
		Templates:        nTpl,
		Documents:        len(docs),
		ColdSegmentNsOp:  coldSeg.NsPerOp(),
		HitPathNsOp:      hit.NsPerOp(),
		HitSpeedup:       round2(float64(coldSeg.NsPerOp()) / float64(hit.NsPerOp())),
		ColdPipelineNsOp: coldPipe.NsPerOp(),
		WarmPipelineNsOp: warmPipe.NsPerOp(),
		PipelineSpeedup:  round2(float64(coldPipe.NsPerOp()) / float64(warmPipe.NsPerOp())),
		WarmHitRate:      round2ratio(hitRate),
	}
	fmt.Printf("  cold segment %s  hit path %s  speedup %.2fx\n",
		fmtNs(rep.ColdSegmentNsOp), fmtNs(rep.HitPathNsOp), rep.HitSpeedup)
	fmt.Printf("  cold pipeline %s  warm pipeline %s  speedup %.2fx  (fresh-cache hit rate %.3f)\n",
		fmtNs(rep.ColdPipelineNsOp), fmtNs(rep.WarmPipelineNsOp), rep.PipelineSpeedup, rep.WarmHitRate)
	return rep
}

func runTemplateBench(out string) {
	fmt.Println("Template-cache benchmark (hit path vs cold segmentation, best of 3 interleaved runs)")
	rep := runTemplateBenchOnce()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vs2bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vs2bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}

// runTemplateGate fails (exit 1) when the within-run hit-path speedup
// drops below the committed floor, confirmed by one re-measurement.
func runTemplateGate() {
	fmt.Printf("Template-cache gate (floor: %.1fx hit path vs cold segmentation, within-run)\n", templateSpeedupFloor)
	rep := runTemplateBenchOnce()
	if rep.HitSpeedup < templateSpeedupFloor {
		fmt.Printf("hit speedup %.2fx below floor; re-measuring to rule out a noisy run\n", rep.HitSpeedup)
		rep = runTemplateBenchOnce()
	}
	if rep.HitSpeedup < templateSpeedupFloor {
		fmt.Fprintf(os.Stderr, "vs2bench: template gate FAILED: hit path only %.2fx faster than cold segmentation, floor is %.1fx (confirmed by re-measurement)\n",
			rep.HitSpeedup, templateSpeedupFloor)
		os.Exit(1)
	}
	fmt.Println("template gate passed")
}
