// Command vs2 runs the VS2 pipeline on one document: it reads a document
// (or labelled document) JSON file, segments it into logical blocks, and —
// given a task — extracts the task's named entities.
//
// Usage:
//
//	vs2 -in poster.json -task events            # segment + extract
//	vs2 -in poster.json -dump                   # print the layout tree
//	vs2 -in form.json -task tax -json           # machine-readable output
//	vs2 -in huge.json -timeout 5s               # bounded extraction
//	vs2 -in form.json -task tax -trace t.json   # span tree of the run
//	vs2 -in form.json -task tax -explain        # Eq. 2 candidate scoring
//
// Tasks: events (Table 3), realestate (Table 4), tax (NIST form fields).
// Extraction runs under -timeout (default 30s); on failure the exit code
// is non-zero and stderr names the pipeline phase that failed. Degraded
// runs (segmentation or disambiguation fell back to a cheaper strategy)
// are reported as warnings on stderr.
//
// Observability: -trace FILE writes the run's span tree (one span per
// pipeline phase and per segmentation split) as JSON; -metrics prints the
// aggregated counter/histogram snapshot to stderr; -explain prints the
// extraction report — every candidate per entity with its Eq. 2 cost
// terms — or, with -json, embeds it in the output object.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"vs2"
	"vs2/internal/render"
)

func main() {
	var (
		in       = flag.String("in", "", "input document JSON (document or labelled document)")
		task     = flag.String("task", "events", "task: events | realestate | tax")
		dump     = flag.Bool("dump", false, "print the layout tree instead of extracting")
		interest = flag.Bool("interest", false, "print the interest points (Fig. 6 analogue)")
		svgOut   = flag.String("svg", "", "write an SVG rendering (document + blocks + interest points) to this file")
		ascii    = flag.Bool("ascii", false, "print the block layout as ASCII art")
		asJSON   = flag.Bool("json", false, "emit extractions as JSON")
		ablation = flag.String("disambiguation", "multimodal", "multimodal | none | lesk")
		timeout  = flag.Duration("timeout", 30*time.Second, "overall extraction deadline (0 = none)")
		traceOut = flag.String("trace", "", "write the run's span tree as JSON to this file")
		metrics  = flag.Bool("metrics", false, "print the metrics snapshot to stderr after the run")
		explain  = flag.Bool("explain", false, "print the extraction report (candidates + Eq. 2 terms)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "vs2: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	d, err := loadDocument(*in)
	if err != nil {
		fatal(err)
	}

	cfg := vs2.Config{Task: taskByName(*task), Explain: *explain}
	if *metrics {
		cfg.Metrics = vs2.NewMetrics()
	}
	switch *ablation {
	case "none":
		cfg.DisableDisambiguation = true
	case "lesk":
		cfg.LeskDisambiguation = true
	case "multimodal":
	default:
		fatal(fmt.Errorf("unknown disambiguation %q", *ablation))
	}
	p := vs2.NewPipeline(cfg)

	if *dump {
		tree := p.Segment(d)
		fmt.Print(tree.Dump(d))
		return
	}
	if *interest {
		for _, b := range p.InterestPoints(d) {
			fmt.Printf("interest point [%.0f,%.0f %.0fx%.0f] %q\n",
				b.Box.X, b.Box.Y, b.Box.W, b.Box.H, b.Text(d))
		}
		return
	}
	if *svgOut != "" {
		tree := p.Segment(d)
		svg := render.SVG(d, render.Options{
			Blocks:   tree.Leaves(),
			Interest: p.InterestPoints(d),
		})
		if err := os.WriteFile(*svgOut, []byte(svg), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgOut)
		return
	}
	if *ascii {
		fmt.Print(render.ASCII(d, p.Segment(d).Leaves(), 100))
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var tr *vs2.Trace
	if *traceOut != "" {
		tr = vs2.NewTrace("vs2 " + d.ID)
		ctx = vs2.WithTrace(ctx, tr)
	}
	res, err := p.ExtractContext(ctx, d)
	if tr != nil {
		tr.Finish()
		if werr := writeTrace(*traceOut, tr); werr != nil {
			fatal(werr)
		}
		fmt.Fprintf(os.Stderr, "vs2: trace written to %s\n", *traceOut)
	}
	if cfg.Metrics != nil {
		// os.Exit in the error branch below skips defers, so the failed
		// runs that most need metrics must dump them eagerly.
		defer dumpMetrics(cfg.Metrics)
	}
	if err != nil {
		if cfg.Metrics != nil {
			dumpMetrics(cfg.Metrics)
		}
		var pe *vs2.Error
		if errors.As(err, &pe) {
			fmt.Fprintf(os.Stderr, "vs2: %s phase failed: %v\n", pe.Phase, pe.Err)
		} else {
			fmt.Fprintln(os.Stderr, "vs2:", err)
		}
		os.Exit(1)
	}
	for _, g := range res.Degraded {
		fmt.Fprintf(os.Stderr, "vs2: warning: %s\n", g)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var out any = res.Entities
		if *explain {
			out = struct {
				Entities []vs2.Extraction `json:"entities"`
				Report   *vs2.Report      `json:"report,omitempty"`
			}{res.Entities, res.Report}
		}
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s: %d logical blocks, %d entities\n\n", d.ID, len(res.Blocks), len(res.Entities))
	for _, e := range res.Entities {
		fmt.Printf("%-22s %q\n", e.Entity, e.Text)
		fmt.Printf("%22s at (%.0f,%.0f) %0.fx%.0f\n", "", e.Box.X, e.Box.Y, e.Box.W, e.Box.H)
	}
	if *explain && res.Report != nil {
		fmt.Printf("\n--- extraction report ---\n%s", res.Report)
	}
}

// writeTrace serialises a finished trace's span tree as indented JSON.
func writeTrace(path string, tr *vs2.Trace) error {
	data, err := json.MarshalIndent(tr.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// dumpMetrics prints the registry snapshot to stderr as indented JSON.
func dumpMetrics(m *vs2.Metrics) {
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	fmt.Fprintln(os.Stderr, "vs2: metrics:")
	if err := enc.Encode(m.Snapshot()); err != nil {
		fmt.Fprintln(os.Stderr, "vs2: metrics snapshot failed:", err)
	}
}

func loadDocument(path string) (*vs2.Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Try a labelled document first, then a bare document.
	var l vs2.Labeled
	if err := json.Unmarshal(data, &l); err == nil && l.Doc != nil {
		return l.Doc, nil
	}
	return vs2.DecodeDocument(data)
}

func taskByName(name string) vs2.Task {
	switch name {
	case "events":
		return vs2.EventPosterTask()
	case "realestate":
		return vs2.RealEstateTask()
	case "tax":
		return vs2.NISTTaxTask()
	default:
		fatal(fmt.Errorf("unknown task %q (want events | realestate | tax)", name))
		return vs2.Task{}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vs2:", err)
	os.Exit(1)
}
