// Command vs2 runs the VS2 pipeline on one document: it reads a document
// (or labelled document) JSON file, segments it into logical blocks, and —
// given a task — extracts the task's named entities.
//
// Usage:
//
//	vs2 -in poster.json -task events            # segment + extract
//	vs2 -in poster.json -dump                   # print the layout tree
//	vs2 -in form.json -task tax -json           # machine-readable output
//	vs2 -in huge.json -timeout 5s               # bounded extraction
//
// Tasks: events (Table 3), realestate (Table 4), tax (NIST form fields).
// Extraction runs under -timeout (default 30s); on failure the exit code
// is non-zero and stderr names the pipeline phase that failed. Degraded
// runs (segmentation or disambiguation fell back to a cheaper strategy)
// are reported as warnings on stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"vs2"
	"vs2/internal/render"
)

func main() {
	var (
		in       = flag.String("in", "", "input document JSON (document or labelled document)")
		task     = flag.String("task", "events", "task: events | realestate | tax")
		dump     = flag.Bool("dump", false, "print the layout tree instead of extracting")
		interest = flag.Bool("interest", false, "print the interest points (Fig. 6 analogue)")
		svgOut   = flag.String("svg", "", "write an SVG rendering (document + blocks + interest points) to this file")
		ascii    = flag.Bool("ascii", false, "print the block layout as ASCII art")
		asJSON   = flag.Bool("json", false, "emit extractions as JSON")
		ablation = flag.String("disambiguation", "multimodal", "multimodal | none | lesk")
		timeout  = flag.Duration("timeout", 30*time.Second, "overall extraction deadline (0 = none)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "vs2: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	d, err := loadDocument(*in)
	if err != nil {
		fatal(err)
	}

	cfg := vs2.Config{Task: taskByName(*task)}
	switch *ablation {
	case "none":
		cfg.DisableDisambiguation = true
	case "lesk":
		cfg.LeskDisambiguation = true
	case "multimodal":
	default:
		fatal(fmt.Errorf("unknown disambiguation %q", *ablation))
	}
	p := vs2.NewPipeline(cfg)

	if *dump {
		tree := p.Segment(d)
		fmt.Print(tree.Dump(d))
		return
	}
	if *interest {
		for _, b := range p.InterestPoints(d) {
			fmt.Printf("interest point [%.0f,%.0f %.0fx%.0f] %q\n",
				b.Box.X, b.Box.Y, b.Box.W, b.Box.H, b.Text(d))
		}
		return
	}
	if *svgOut != "" {
		tree := p.Segment(d)
		svg := render.SVG(d, render.Options{
			Blocks:   tree.Leaves(),
			Interest: p.InterestPoints(d),
		})
		if err := os.WriteFile(*svgOut, []byte(svg), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgOut)
		return
	}
	if *ascii {
		fmt.Print(render.ASCII(d, p.Segment(d).Leaves(), 100))
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := p.ExtractContext(ctx, d)
	if err != nil {
		var pe *vs2.Error
		if errors.As(err, &pe) {
			fmt.Fprintf(os.Stderr, "vs2: %s phase failed: %v\n", pe.Phase, pe.Err)
		} else {
			fmt.Fprintln(os.Stderr, "vs2:", err)
		}
		os.Exit(1)
	}
	for _, g := range res.Degraded {
		fmt.Fprintf(os.Stderr, "vs2: warning: %s degraded to %s (%s)\n", g.Phase, g.Fallback, g.Cause)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Entities); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s: %d logical blocks, %d entities\n\n", d.ID, len(res.Blocks), len(res.Entities))
	for _, e := range res.Entities {
		fmt.Printf("%-22s %q\n", e.Entity, e.Text)
		fmt.Printf("%22s at (%.0f,%.0f) %0.fx%.0f\n", "", e.Box.X, e.Box.Y, e.Box.W, e.Box.H)
	}
}

func loadDocument(path string) (*vs2.Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Try a labelled document first, then a bare document.
	var l vs2.Labeled
	if err := json.Unmarshal(data, &l); err == nil && l.Doc != nil {
		return l.Doc, nil
	}
	return vs2.DecodeDocument(data)
}

func taskByName(name string) vs2.Task {
	switch name {
	case "events":
		return vs2.EventPosterTask()
	case "realestate":
		return vs2.RealEstateTask()
	case "tax":
		return vs2.NISTTaxTask()
	default:
		fatal(fmt.Errorf("unknown task %q (want events | realestate | tax)", name))
		return vs2.Task{}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vs2:", err)
	os.Exit(1)
}
