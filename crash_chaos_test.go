package vs2

// Crash-chaos harness for the durability layer: a real vs2serve child
// process is SIGKILLed at randomized journal offsets, then resumed with
// -resume, and the resumed stdout must be byte-identical to an
// uninterrupted run — the end-to-end form of the write-ahead contract
// that internal/faults' in-process disk faults cannot exercise (a kill
// -9 takes the whole process, dirty buffers and all).
//
// The harness is subprocess-heavy, so it runs only in the full suite
// (`make crash-chaos`); -short skips it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildServeBinary compiles cmd/vs2serve once per test run.
func buildServeBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vs2serve")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/vs2serve")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/vs2serve: %v\n%s", err, out)
	}
	return bin
}

// chaosCorpus renders n generated posters as the JSONL stream vs2serve
// reads.
func chaosCorpus(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, l := range GenerateEventPosters(n, 1234) {
		data, err := json.Marshal(&l)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// serveArgs is the fixed command line of every child in the harness;
// only the journal flags vary.
func serveArgs(extra ...string) []string {
	args := []string{"-task", "events", "-workers", "2", "-queue-wait", "10m"}
	return append(args, extra...)
}

// runServe runs the child to completion and returns its stdout.
func runServe(t *testing.T, bin string, stdin []byte, extra ...string) []byte {
	t.Helper()
	cmd := exec.Command(bin, serveArgs(extra...)...)
	cmd.Stdin = bytes.NewReader(stdin)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("vs2serve %v: %v\nstderr:\n%s", extra, err, stderr.String())
	}
	return stdout.Bytes()
}

// killAtOffset starts a journaled child and SIGKILLs it once the journal
// file reaches offset bytes. It returns true if the kill landed before
// the child finished on its own.
func killAtOffset(t *testing.T, bin string, stdin []byte, jpath string, offset int64) bool {
	t.Helper()
	cmd := exec.Command(bin, serveArgs("-journal", jpath)...)
	cmd.Stdin = bytes.NewReader(stdin)
	cmd.Stdout, cmd.Stderr = nil, nil // a killed run's output is garbage by design
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan struct{})
	go func() {
		cmd.Wait() //nolint:errcheck // the child is expected to die by SIGKILL
		close(exited)
	}()
	killed := false
	deadline := time.Now().Add(2 * time.Minute)
	for {
		select {
		case <-exited:
			return killed
		default:
		}
		if st, err := os.Stat(jpath); err == nil && st.Size() >= offset {
			cmd.Process.Kill() //nolint:errcheck
			killed = true
			<-exited
			return true
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill() //nolint:errcheck
			<-exited
			t.Fatalf("child never reached journal offset %d", offset)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestCrashChaosResumeByteIdentical is the acceptance test of the PR:
// kill -9 at >=20 randomized journal offsets, resume each time, and the
// resumed output must be byte-identical to the uninterrupted run's.
func TestCrashChaosResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("crash chaos spawns real subprocesses; skipped in -short")
	}
	bin := buildServeBinary(t)
	corpus := chaosCorpus(t, 48)
	dir := t.TempDir()

	golden := runServe(t, bin, corpus)

	// A journaled run and a plain run must agree before any crash enters
	// the picture: journaling is an overlay, not a different pipeline.
	journaled := runServe(t, bin, corpus, "-journal", filepath.Join(dir, "probe.wal"))
	if !bytes.Equal(golden, journaled) {
		t.Fatalf("journaled run differs from plain run:\n-- plain --\n%s\n-- journaled --\n%s", golden, journaled)
	}

	// Measure how large the journal grows before Close compacts it, by
	// watching a throwaway child; the kill offsets then spread across the
	// real window instead of clustering at zero.
	probePath := filepath.Join(dir, "grow.wal")
	var maxSize int64
	{
		cmd := exec.Command(bin, serveArgs("-journal", probePath)...)
		cmd.Stdin = bytes.NewReader(corpus)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }() //nolint:errcheck
	probe:
		for {
			select {
			case <-done:
				break probe
			default:
				if st, err := os.Stat(probePath); err == nil && st.Size() > maxSize {
					maxSize = st.Size()
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}
	if maxSize == 0 {
		t.Fatal("probe run never grew the journal")
	}

	rnd := rand.New(rand.NewSource(99)) // seeded: a failure reproduces
	const iterations = 22
	landed := 0
	for i := 0; i < iterations; i++ {
		jpath := filepath.Join(dir, fmt.Sprintf("crash-%d.wal", i))
		offset := rnd.Int63n(maxSize + 1)
		if killAtOffset(t, bin, corpus, jpath, offset) {
			landed++
		}
		resumed := runServe(t, bin, corpus, "-journal", jpath, "-resume")
		if !bytes.Equal(golden, resumed) {
			t.Fatalf("iteration %d (kill at journal offset %d): resumed output differs\n-- golden --\n%s\n-- resumed --\n%s",
				i, offset, golden, resumed)
		}
	}
	t.Logf("crash chaos: %d/%d kills landed mid-run (journal window %d bytes)", landed, iterations, maxSize)
	if landed == 0 {
		t.Fatal("no kill ever landed before the child finished; the harness is not exercising crashes")
	}
}

// TestCrashChaosCorruptTailResume: garbage appended to a journal (a torn
// frame from a dying disk, a partial write) is dropped on resume and the
// run still reproduces the uninterrupted output byte for byte.
func TestCrashChaosCorruptTailResume(t *testing.T) {
	if testing.Short() {
		t.Skip("crash chaos spawns real subprocesses; skipped in -short")
	}
	bin := buildServeBinary(t)
	corpus := chaosCorpus(t, 12)
	dir := t.TempDir()

	golden := runServe(t, bin, corpus)

	jpath := filepath.Join(dir, "corrupt.wal")
	killAtOffset(t, bin, corpus, jpath, 256) // leave real completed records behind

	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("J1 99 zzzzzzzz not a frame\x00\xff garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	resumed := runServe(t, bin, corpus, "-journal", jpath, "-resume")
	if !bytes.Equal(golden, resumed) {
		t.Fatalf("corrupt-tail resume differs from golden:\n-- golden --\n%s\n-- resumed --\n%s", golden, resumed)
	}
}
