package vs2

// Chaos-under-load soak of the serving layer: 200+ documents through a
// 4-worker pool with per-document fault injection — invalid documents,
// transient and persistent search failures, panics, slow segmenters —
// plus a deterministic breaker trip/recovery phase and a saturation
// phase, all under -race via the `make serve-chaos` target. The
// containment contract at this scale: no panics, no deadlocks, zero
// leaked goroutines, every shed or failed document carries a structured
// error, and breaker trips are visible in the metrics snapshot.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"vs2/internal/extract"
	"vs2/internal/faults"
	"vs2/internal/segment"
)

// soakDoc is a cut-down event poster: enough structure to extract
// entities, small enough that a 200-document soak stays minutes, not
// tens of minutes, under the race detector.
func soakDoc(id string) *Document {
	d := &Document{ID: id, Width: 400, Height: 600, Background: White}
	eid := 0
	add := func(x, y, fontH float64, color RGB, words ...string) {
		cx := x
		for _, w := range words {
			width := float64(len(w)) * fontH * 0.55
			d.Elements = append(d.Elements, Element{
				ID: eid, Kind: TextElement, Text: w,
				Box:      Rect{X: cx, Y: y, W: width, H: fontH},
				Color:    color,
				FontSize: fontH, Line: int(y),
			})
			eid++
			cx += width + fontH*0.5
		}
	}
	add(30, 30, 30, Black, "Harvest", "Festival")
	add(30, 220, 14, Black, "Friday", "October", "3,", "6:00", "PM")
	add(30, 250, 14, Black, "12", "Orchard", "Lane")
	return d
}

// routedSegmenter dispatches per document ID, so each soak document can
// carry its own (stateful, Times-bounded) fault wrapper.
type routedSegmenter struct {
	def  SegmentBackend
	byID map[string]SegmentBackend
}

func (r *routedSegmenter) SegmentContext(ctx context.Context, d *Document) (*Node, error) {
	if b, ok := r.byID[d.ID]; ok {
		return b.SegmentContext(ctx, d)
	}
	return r.def.SegmentContext(ctx, d)
}

type routedExtractor struct {
	def  ExtractBackend
	byID map[string]ExtractBackend
}

func (r *routedExtractor) pick(id string) ExtractBackend {
	if b, ok := r.byID[id]; ok {
		return b
	}
	return r.def
}

func (r *routedExtractor) SearchContext(ctx context.Context, d *Document, blocks []*Node, sets []*PatternSet) (map[string][]Candidate, error) {
	return r.pick(d.ID).SearchContext(ctx, d, blocks, sets)
}

func (r *routedExtractor) SelectContext(ctx context.Context, d *Document, blocks []*Node, cands map[string][]Candidate, sets []*PatternSet) ([]Extraction, error) {
	return r.pick(d.ID).SelectContext(ctx, d, blocks, cands, sets)
}

func (r *routedExtractor) SelectFirstMatch(d *Document, cands map[string][]Candidate, sets []*PatternSet) []Extraction {
	return r.pick(d.ID).SelectFirstMatch(d, cands, sets)
}

func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Soak document classes, decided by index within the concurrent batch.
const (
	classClean = iota
	classInvalid
	classFlakySearch      // one injected search error, then clean: normal retry
	classPanicOnceSearch  // one injected search panic, then clean: degraded retry
	classPanicAlwaysSearc // every search panics: fails with a structured error
	classSlowSegment      // 5ms segmenter stall: slow but clean
)

func classOf(i int) int {
	switch {
	case i%10 == 9:
		return classInvalid
	case i == 50 || i == 111:
		return classPanicAlwaysSearc
	case i%7 == 3:
		return classFlakySearch
	case i%13 == 5:
		return classPanicOnceSearch
	case i%17 == 2:
		return classSlowSegment
	default:
		return classClean
	}
}

func TestServeChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	task := EventPosterTask()
	baseSeg := segment.New(segment.Options{})
	baseExt := extract.New(extract.Options{Weights: task.Weights})
	segRoutes := map[string]SegmentBackend{}
	searchRoutes := map[string]ExtractBackend{}

	const batchN = 200
	docs := make([]*Document, batchN)
	for i := range docs {
		id := fmt.Sprintf("soak-%03d", i)
		switch classOf(i) {
		case classInvalid:
			docs[i] = invalidDoc(id)
			continue
		case classFlakySearch:
			searchRoutes[id] = &faults.Extractor{Inner: baseExt,
				Search: faults.Injection{Kind: faults.Error, Times: 1}}
		case classPanicOnceSearch:
			searchRoutes[id] = &faults.Extractor{Inner: baseExt,
				Search: faults.Injection{Kind: faults.Panic, Times: 1}}
		case classPanicAlwaysSearc:
			searchRoutes[id] = &faults.Extractor{Inner: baseExt,
				Search: faults.Injection{Kind: faults.Panic}}
		case classSlowSegment:
			segRoutes[id] = &faults.Segmenter{Inner: baseSeg,
				Inject: faults.Injection{Kind: faults.Delay, Sleep: 5 * time.Millisecond}}
		}
		docs[i] = soakDoc(id)
	}
	// The deterministic breaker phase: persistent segment failures,
	// extracted sequentially after the batch so the failures are
	// guaranteed consecutive on the shared breaker.
	const tripN = 12 // breaker threshold 10 + 2 short-circuited documents
	tripDocs := make([]*Document, tripN)
	for i := range tripDocs {
		id := fmt.Sprintf("soak-trip-%02d", i)
		segRoutes[id] = &faults.Segmenter{Inner: baseSeg, Inject: faults.Injection{Kind: faults.Error}}
		tripDocs[i] = soakDoc(id)
	}

	m := NewMetrics()
	p := NewPipeline(Config{
		Task:      task,
		Segmenter: &routedSegmenter{def: baseSeg, byID: segRoutes},
		Extractor: &routedExtractor{def: baseExt, byID: searchRoutes},
	})
	s := NewServer(p, ServerConfig{
		Workers:   4,
		Queue:     16,
		QueueWait: 10 * time.Minute, // the saturation phase below tests shedding
		Metrics:   m,
		Retry:     fastRetry(3),
		// Threshold 10 keeps the scattered batch failures from tripping
		// breakers nondeterministically; the sequential trip phase
		// crosses it on purpose.
		Breaker: BreakerPolicy{Threshold: 10, Cooldown: 100 * time.Millisecond},
	})

	// Phase 1: the concurrent fault-injected batch.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	results := s.ExtractBatch(ctx, docs)

	var completed, failed int
	for i, r := range results {
		class := classOf(i)
		if r.Err != nil {
			failed++
			var pe *Error
			if !errors.As(r.Err, &pe) {
				t.Fatalf("doc %d (class %d): unstructured error %v", i, class, r.Err)
			}
			switch class {
			case classInvalid:
				if !errors.Is(r.Err, ErrInvalidDocument) {
					t.Fatalf("invalid doc %d failed with %v, want ErrInvalidDocument", i, r.Err)
				}
			case classPanicAlwaysSearc:
				if !errors.Is(r.Err, ErrPanic) {
					t.Fatalf("persistent-panic doc %d failed with %v, want ErrPanic", i, r.Err)
				}
			default:
				t.Fatalf("doc %d (class %d) failed unexpectedly: %v", i, class, r.Err)
			}
			continue
		}
		completed++
		switch class {
		case classInvalid, classPanicAlwaysSearc:
			t.Fatalf("doc %d (class %d) succeeded, expected failure", i, class)
		case classPanicOnceSearch:
			if !hasDegradation(r.Result, PhaseSegment, "linear-segmentation") ||
				!hasDegradation(r.Result, PhaseDisambiguate, "first-match") {
				t.Fatalf("panic-once doc %d: degradations = %+v, want degraded-mode retry markers", i, r.Result.Degraded)
			}
		case classClean, classSlowSegment:
			if r.Result.IsDegraded() {
				t.Fatalf("doc %d (class %d) degraded: %+v", i, class, r.Result.Degraded)
			}
			if len(r.Result.Entities) == 0 {
				t.Fatalf("doc %d (class %d) extracted nothing", i, class)
			}
		}
	}
	t.Logf("batch: %d completed, %d failed", completed, failed)

	snap := m.Snapshot()
	if snap.Counters["serve.retries"] == 0 {
		t.Fatal("no retries recorded despite transient faults")
	}
	if snap.Counters["serve.retries.degraded"] == 0 {
		t.Fatal("no degraded-mode retries recorded despite injected panics")
	}
	if got := snap.Counters["serve.breaker.segment.to_open"]; got != 0 {
		t.Fatalf("segment breaker tripped during the batch (%d); soak classes are miswired", got)
	}

	// Phase 2: deterministic breaker trip — consecutive segment failures
	// cross the threshold, then the open breaker routes documents to the
	// linear fallback with the trip recorded in Result.Degraded.
	sawBreakerCause := false
	for i, d := range tripDocs {
		res, err := s.Extract(ctx, d)
		if err != nil {
			t.Fatalf("trip doc %d: %v", i, err)
		}
		if !hasDegradation(res, PhaseSegment, "linear-segmentation") {
			t.Fatalf("trip doc %d: degradations = %+v, want linear-segmentation", i, res.Degraded)
		}
		if len(res.Entities) == 0 {
			t.Fatalf("trip doc %d: linear fallback extracted nothing", i)
		}
		for _, g := range res.Degraded {
			if g.Phase == PhaseSegment && errorsContains(g.Cause, ErrBreakerOpen.Error()) {
				sawBreakerCause = true
			}
		}
	}
	if !sawBreakerCause {
		t.Fatal("no trip document recorded the open breaker as its degradation cause")
	}
	if got := m.Snapshot().Counters["serve.breaker.segment.to_open"]; got < 1 {
		t.Fatalf("serve.breaker.segment.to_open = %d, want >= 1", got)
	}

	// Phase 3: recovery — after the cooldown a clean document closes the
	// breaker again via a successful half-open probe.
	time.Sleep(200 * time.Millisecond)
	res, err := s.Extract(ctx, soakDoc("soak-recovery"))
	if err != nil {
		t.Fatalf("recovery doc: %v", err)
	}
	if res.IsDegraded() {
		t.Fatalf("recovery doc degraded: %+v", res.Degraded)
	}
	if got := m.Snapshot().Counters["serve.breaker.segment.to_closed"]; got < 1 {
		t.Fatalf("serve.breaker.segment.to_closed = %d, want >= 1", got)
	}

	// Accounting: every document handled got exactly one recorded fate.
	snap = m.Snapshot()
	handled := snap.Counters["serve.completed"] + snap.Counters["serve.failed"]
	if want := int64(batchN + tripN + 1); handled != want {
		t.Fatalf("completed+failed = %d, want %d", handled, want)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Phase 4: saturation — a 1-worker, 1-slot server with a stalled
	// backend and no queue-wait budget sheds its overflow, every shed
	// carrying a structured ErrOverloaded.
	slowP := NewPipeline(Config{
		Task: task,
		Segmenter: &faults.Segmenter{Inner: baseSeg,
			Inject: faults.Injection{Kind: faults.Delay, Sleep: 100 * time.Millisecond}},
	})
	m2 := NewMetrics()
	s2 := NewServer(slowP, ServerConfig{Workers: 1, Queue: 1, QueueWait: -1, Metrics: m2, Retry: fastRetry(1)})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var shed, served int
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s2.Extract(context.Background(), soakDoc(fmt.Sprintf("burst-%02d", i)))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
			case errors.Is(err, ErrOverloaded):
				var pe *Error
				if !errors.As(err, &pe) || pe.Phase != PhaseAdmit {
					t.Errorf("burst doc %d: shed without structured admit error: %v", i, err)
				}
				shed++
			default:
				t.Errorf("burst doc %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if shed == 0 {
		t.Fatal("saturation burst shed nothing")
	}
	if served+shed != 12 {
		t.Fatalf("served %d + shed %d != 12", served, shed)
	}
	if got := m2.Snapshot().Counters["serve.shed"]; got < int64(shed) {
		t.Fatalf("serve.shed = %d, want >= %d", got, shed)
	}
	t.Logf("burst: %d served, %d shed", served, shed)

	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown (burst server): %v", err)
	}

	// No goroutine may outlive the drained servers.
	settleGoroutines(t, baseline)
}
