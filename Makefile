GO ?= go

.PHONY: check vet build test race fuzz

# check is the tier-1 verification gate: static analysis, a full build,
# the full test suite, and the race-detector pass (the chaos suite asserts
# its no-panic/no-hang containment contract there).
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The statistical sweeps in internal/eval and the integration floors are
# ~20x slower under the race detector and carry testing.Short() guards;
# -short keeps the race pass focused on concurrency (chaos suite, fault
# harness, unit tests) and inside go test's default timeout.
race:
	$(GO) test -race -short ./...

# fuzz smoke-runs the two fuzz targets (decoder, full pipeline).
fuzz:
	$(GO) test -run FuzzDecode -fuzz FuzzDecode -fuzztime 30s ./internal/doc
	$(GO) test -run FuzzExtract -fuzz FuzzExtract -fuzztime 30s .
