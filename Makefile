GO ?= go

.PHONY: check vet build test race obs fuzz trace-demo

# check is the tier-1 verification gate: static analysis, a full build,
# the full test suite, the race-detector pass (the chaos suite asserts
# its no-panic/no-hang containment contract there), and a focused
# race-detector pass over the observability primitives.
check: vet build test race obs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The statistical sweeps in internal/eval and the integration floors are
# ~20x slower under the race detector and carry testing.Short() guards;
# -short keeps the race pass focused on concurrency (chaos suite, fault
# harness, unit tests) and inside go test's default timeout.
race:
	$(GO) test -race -short ./...

# obs race-checks the tracing and metrics primitives specifically: every
# counter, gauge, histogram and span is hit from concurrent goroutines.
obs:
	$(GO) test -run TestObs -race ./internal/obs

# trace-demo runs the full observability path end to end: generate one
# tax form, extract with tracing + metrics + explanation on, then
# validate the span tree (structure, phase coverage, 10% wall-clock
# accounting) with vs2trace.
trace-demo:
	$(GO) run ./cmd/vs2gen -dataset d1 -n 1 -seed 7 -out - > /tmp/vs2-demo-form.json
	$(GO) run ./cmd/vs2 -in /tmp/vs2-demo-form.json -task tax \
		-trace /tmp/vs2-demo-trace.json -metrics -explain > /dev/null
	$(GO) run ./cmd/vs2trace -in /tmp/vs2-demo-trace.json

# fuzz smoke-runs the two fuzz targets (decoder, full pipeline).
fuzz:
	$(GO) test -run FuzzDecode -fuzz FuzzDecode -fuzztime 30s ./internal/doc
	$(GO) test -run FuzzExtract -fuzz FuzzExtract -fuzztime 30s .
