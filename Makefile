GO ?= go

.PHONY: check vet build test race obs serve-chaos crash-chaos shard-chaos reshard-chaos triage-chaos template-diff fuzz trace-demo bench-gate bench-baseline

# check is the tier-1 verification gate: static analysis, a full build,
# the full test suite, the race-detector pass (the chaos suite asserts
# its no-panic/no-hang containment contract there), a focused
# race-detector pass over the observability primitives, the
# serving-layer soak, the journal kill -9 crash-recovery harness, the
# sharded-fleet shard-kill harness, the live-resharding rebalance
# harness, the fidelity-ladder overload soak, the template-cache
# differential-oracle suite, and the benchmark regression gates.
check: vet build test race obs serve-chaos crash-chaos shard-chaos reshard-chaos triage-chaos template-diff bench-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The statistical sweeps in internal/eval and the integration floors are
# ~20x slower under the race detector and carry testing.Short() guards;
# -short keeps the race pass focused on concurrency (chaos suite, fault
# harness, unit tests) and inside go test's default timeout.
race:
	$(GO) test -race -short ./...

# obs race-checks the tracing and metrics primitives specifically: every
# counter, gauge, histogram and span is hit from concurrent goroutines.
obs:
	$(GO) test -run TestObs -race ./internal/obs

# serve-chaos soaks the serving layer under the race detector: 200+
# documents through a 4-worker pool with per-document fault injection
# (invalid documents, transient and persistent search failures, panics,
# slow segmenters), a deterministic circuit-breaker trip/recovery
# sequence, and a saturation burst against a full queue. Asserted
# invariants: no panics, no deadlocks, zero leaked goroutines
# (before/after goroutine counts with a settle loop), every shed or
# failed document carries a structured error, and breaker transitions
# are visible in the metrics snapshot. (The `race` target skips it via
# -short so the soak runs exactly once per check.)
serve-chaos:
	$(GO) test -race -run TestServeChaosSoak -count=1 -timeout 15m .

# crash-chaos exercises the durability layer's crash-recovery contract
# end to end: a real vs2serve child process is SIGKILLed at 20+
# randomized write-ahead-journal offsets and resumed with -resume; the
# resumed stdout must be byte-identical to an uninterrupted run's, and a
# journal with a garbage tail must recover by dropping only the torn
# frame. (The `race` target skips it via -short, like serve-chaos.)
crash-chaos:
	$(GO) test -race -run TestCrashChaos -count=1 -timeout 10m .

# shard-chaos generalizes crash-chaos to the sharded topology: a real
# vs2d front end fans a batch across supervised worker shard child
# processes, and the harness SIGKILLs a random shard at 20+ randomized
# journal offsets (and, separately, the front end itself, resuming with
# -resume). In every case the merged stdout must be byte-identical to an
# uninterrupted run.
shard-chaos:
	$(GO) test -race -run TestShardChaos -count=1 -timeout 15m .

# reshard-chaos drives live fleet reconfiguration under fire: a real
# vs2d front end serves a batch while the harness scales the fleet
# 3 -> 5 -> 2 through POST /admin/scale (odd iterations also roll it
# via SIGHUP) and SIGKILLs a random shard inside the transition window
# at randomized offsets. The merged stdout must stay byte-identical to
# an undisturbed 3-shard run with every document emitted exactly once,
# the retired shards' journals must hand off to live successors, and
# the epoch-stamped shard.reconfig.* series must appear in the final
# /metrics scrape (saved to VS2_CHAOS_ARTIFACTS for CI upload).
reshard-chaos:
	$(GO) test -race -run TestReshardChaos -count=1 -timeout 20m .

# triage-chaos soaks the adaptive fidelity ladder under the race
# detector: a saturating 150-document burst against a deliberately
# undersized server, once with the ladder off (the control: most of the
# burst sheds with ErrOverloaded) and once adaptive (the controller
# shifts the triage thresholds and the cheap path drains the queue).
# Asserted invariants: the adaptive run sheds strictly fewer documents
# than the control, at least one up-shift fires, recovery back to full
# fidelity is monotone, a ladder-off server renders byte-identical
# output to one without the subsystem, and no goroutines leak. With
# VS2_CHAOS_ARTIFACTS set, before/during/after /metrics snapshots land
# there for CI upload.
triage-chaos:
	$(GO) test -race -run TestTriageChaosOverloadSoak -count=1 -timeout 15m .

# template-diff runs the layout-template cache's differential oracle
# under the race detector: golden corpora plus 8 seeded synthetic
# templates with jittered geometry, asserting warm (cache-hit) output is
# byte-identical to the cold path — including explanation Reports and
# degradation notes — plus a concurrent Server eviction-churn soak
# against a deliberately undersized cache. (The `race` target runs the
# same tests with -short, which trims the per-template instance count;
# this target runs the full matrix.)
template-diff:
	$(GO) test -race -run TestTemplateDiff -count=1 -timeout 15m .

# trace-demo runs the full observability path end to end: generate one
# tax form, extract with tracing + metrics + explanation on, then
# validate the span tree (structure, phase coverage, 10% wall-clock
# accounting) with vs2trace.
trace-demo:
	$(GO) run ./cmd/vs2gen -dataset d1 -n 1 -seed 7 -out - > /tmp/vs2-demo-form.json
	$(GO) run ./cmd/vs2 -in /tmp/vs2-demo-form.json -task tax \
		-trace /tmp/vs2-demo-trace.json -metrics -explain > /dev/null
	$(GO) run ./cmd/vs2trace -in /tmp/vs2-demo-trace.json

# bench-gate re-measures the segmentation benchmark matrix (reference /
# sequential / parallel at GOMAXPROCS 1, 4, 8) and fails on a >10%
# ns/op regression against the committed BENCH_segment.json baseline.
# The comparison uses within-run ratios against the reference
# implementation, so it holds across machines of different speeds.
# It then re-measures the telemetry overhead (metrics + tracing vs
# neither) and fails if observability costs more than 5% ns/op, and the
# template-cache hit path, which must stay >= 5x faster than a cold
# VS2-Segment (-benchgate runs the template gate itself).
bench-gate:
	$(GO) run ./cmd/vs2bench -benchgate
	$(GO) run ./cmd/vs2bench -obsgate

# bench-baseline regenerates BENCH_segment.json, BENCH_obs.json and
# BENCH_template.json after an intentional performance change. Commit
# the results.
bench-baseline:
	$(GO) run ./cmd/vs2bench -segbench
	$(GO) run ./cmd/vs2bench -obsbench
	$(GO) run ./cmd/vs2bench -templatebench

# fuzz smoke-runs the five fuzz targets (decoder, full pipeline,
# parallel segmenter determinism, journal replay, template
# fingerprinting under forced digest collisions).
fuzz:
	$(GO) test -run FuzzDecode -fuzz FuzzDecode -fuzztime 30s ./internal/doc
	$(GO) test -run FuzzExtract -fuzz FuzzExtract -fuzztime 30s .
	$(GO) test -run FuzzParallelSegment -fuzz FuzzParallelSegment -fuzztime 30s .
	$(GO) test -run FuzzJournalReplay -fuzz FuzzJournalReplay -fuzztime 30s ./internal/journal
	$(GO) test -run FuzzFingerprint -fuzz FuzzFingerprint -fuzztime 30s ./internal/template
