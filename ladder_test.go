package vs2

// Ordering contract of the degradation ladder: when triage routing,
// breaker trips, budget overruns and backend failures fire together,
// Result.Degraded must record exactly one entry per fallback, in phase
// order (triage → segment → search → disambiguate), each with a
// deterministic cause line. The table below pins the exact sequence for
// every reachable combination; the server-level test pins how a pinned
// fidelity ladder (and the fleet's context-carried level) selects the
// triage class.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"vs2/internal/extract"
	"vs2/internal/faults"
	"vs2/internal/obs"
	"vs2/internal/segment"
	"vs2/internal/triage"
)

// ladderExtractor wraps the real extractor so one case can fail search
// with partial candidates (budget/breaker shapes) or fail selection
// outright, independently of timing.
type ladderExtractor struct {
	inner     ExtractBackend
	searchErr error // returned alongside the real (partial) candidates
	selectErr error // forces the first-match fallback
}

func (l *ladderExtractor) SearchContext(ctx context.Context, d *Document, blocks []*Node, sets []*PatternSet) (map[string][]Candidate, error) {
	cands, err := l.inner.SearchContext(ctx, d, blocks, sets)
	if err == nil && l.searchErr != nil {
		return cands, l.searchErr
	}
	return cands, err
}

func (l *ladderExtractor) SelectContext(ctx context.Context, d *Document, blocks []*Node, cands map[string][]Candidate, sets []*PatternSet) ([]Extraction, error) {
	if l.selectErr != nil {
		return nil, l.selectErr
	}
	return l.inner.SelectContext(ctx, d, blocks, cands, sets)
}

func (l *ladderExtractor) SelectFirstMatch(d *Document, cands map[string][]Candidate, sets []*PatternSet) []Extraction {
	return l.inner.SelectFirstMatch(d, cands, sets)
}

// fallbackSeq renders the degradation trail as "phase/fallback" steps.
func fallbackSeq(res *Result) []string {
	out := make([]string, 0, len(res.Degraded))
	for _, g := range res.Degraded {
		out = append(out, string(g.Phase)+"/"+g.Fallback)
	}
	return out
}

func TestDegradationLadderOrdering(t *testing.T) {
	task := EventPosterTask()
	baseSeg := segment.New(segment.Options{})
	baseExt := extract.New(extract.Options{Weights: task.Weights})

	// A triage decision as the serving layer would attach it: real score,
	// real thresholds at the given level.
	decide := func(class triage.Class, level int) *triageDecision {
		return &triageDecision{
			class:  class,
			level:  level,
			score:  triage.Analyze(soakDoc("probe")),
			policy: triage.Policy{}.At(level, 3),
		}
	}

	cases := []struct {
		name      string
		dec       *triageDecision
		segErr    bool  // segmenter fails every call
		searchErr error // injected search error, candidates kept
		selectErr error // injected selection error
		want      []string
		causes    map[string]string // fallback -> required cause substring
	}{
		{
			name: "clean run records nothing",
		},
		{
			name:   "triage cheap",
			dec:    decide(triage.Cheap, 2),
			want:   []string{"triage/triage-cheap"},
			causes: map[string]string{"triage-cheap": "below cheap threshold"},
		},
		{
			name:   "triage skip",
			dec:    decide(triage.Skip, 3),
			want:   []string{"triage/triage-skip"},
			causes: map[string]string{"triage-skip": "fidelity level 3"},
		},
		{
			name:   "segment failure degrades to linear",
			segErr: true,
			want:   []string{"segment/linear-segmentation"},
			causes: map[string]string{"linear-segmentation": "injected"},
		},
		{
			name:      "segment and select failures stack in phase order",
			segErr:    true,
			selectErr: errors.New("injected select failure"),
			want:      []string{"segment/linear-segmentation", "disambiguate/first-match"},
			causes:    map[string]string{"first-match": "injected select failure"},
		},
		{
			name:      "triage cheap plus search budget overrun",
			dec:       decide(triage.Cheap, 1),
			searchErr: fmt.Errorf("%w: injected slow search", ErrBudgetExceeded),
			want:      []string{"triage/triage-cheap", "search/partial-search"},
			causes: map[string]string{
				"triage-cheap":   "fidelity level 1",
				"partial-search": ErrBudgetExceeded.Error(),
			},
		},
		{
			name:      "triage cheap plus open search breaker",
			dec:       decide(triage.Cheap, 2),
			searchErr: fmt.Errorf("search short-circuited: %w", ErrBreakerOpen),
			want:      []string{"triage/triage-cheap", "search/partial-search"},
			causes:    map[string]string{"partial-search": ErrBreakerOpen.Error()},
		},
		{
			name:      "full run with budget overrun and select failure",
			searchErr: fmt.Errorf("%w: injected slow search", ErrBudgetExceeded),
			selectErr: errors.New("injected select failure"),
			want:      []string{"search/partial-search", "disambiguate/first-match"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var seg SegmentBackend = baseSeg
			if tc.segErr {
				seg = &faults.Segmenter{Inner: baseSeg, Inject: faults.Injection{Kind: faults.Error}}
			}
			p := NewPipeline(Config{
				Task:      task,
				Segmenter: seg,
				Extractor: &ladderExtractor{inner: baseExt, searchErr: tc.searchErr, selectErr: tc.selectErr},
			})
			ctx := context.Background()
			if tc.dec != nil {
				ctx = withTriageDecision(ctx, *tc.dec)
			}
			res, err := p.ExtractContext(ctx, soakDoc("ladder-"+tc.name))
			if err != nil {
				t.Fatalf("ExtractContext: %v", err)
			}
			got := fallbackSeq(res)
			if len(got) != len(tc.want) {
				t.Fatalf("degradations = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("degradation %d = %q, want %q (full trail %v)", i, got[i], tc.want[i], got)
				}
			}
			// One entry per fallback: the trail never repeats a strategy.
			seen := map[string]bool{}
			for _, g := range res.Degraded {
				if seen[g.Fallback] {
					t.Fatalf("fallback %q recorded twice: %v", g.Fallback, got)
				}
				seen[g.Fallback] = true
			}
			for _, g := range res.Degraded {
				if want, ok := tc.causes[g.Fallback]; ok && !strings.Contains(g.Cause, want) {
					t.Fatalf("fallback %q cause = %q, want substring %q", g.Fallback, g.Cause, want)
				}
				if g.Cause == "" {
					t.Fatalf("fallback %q recorded no cause", g.Fallback)
				}
			}
			if len(res.Entities) == 0 {
				t.Fatalf("degraded run extracted nothing (trail %v)", got)
			}
		})
	}
}

// TestPinnedFidelityTriage pins the server-level routing: a pinned
// ladder classifies at its pin, and a context-carried level (the fleet
// envelope) overrides it per document.
func TestPinnedFidelityTriage(t *testing.T) {
	// soakDoc's complexity sits between the default skip and cheap
	// thresholds at level 0, and under the widened skip band at level 3 —
	// assert that precondition so the expectations below cannot rot
	// silently if the scorer or the document changes.
	score := triage.Analyze(soakDoc("probe"))
	if c0 := (triage.Policy{}).At(0, 3).Classify(score); c0 != triage.Cheap {
		t.Fatalf("soakDoc classifies %v at level 0, test needs cheap (complexity %.3f)", c0, score.Complexity)
	}
	if c3 := (triage.Policy{}).At(3, 3).Classify(score); c3 != triage.Skip {
		t.Fatalf("soakDoc classifies %v at level 3, test needs skip (complexity %.3f)", c3, score.Complexity)
	}

	task := EventPosterTask()
	cases := []struct {
		name     string
		pin      int
		ctxLevel int // -1 = no context level
		fallback string
		level    string // triage counter's level label
	}{
		{"pin 0 routes cheap at base thresholds", 0, -1, "triage-cheap", "0"},
		{"pin at the top level routes skip", 3, -1, "triage-skip", "3"},
		{"fleet envelope overrides the pin", 0, 3, "triage-skip", "3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMetrics()
			p := NewPipeline(Config{Task: task})
			s := NewServer(p, ServerConfig{
				Workers: 1,
				Metrics: m,
				Fidelity: FidelityPolicy{
					Mode:   FidelityPinned,
					Levels: 3,
					Pin:    tc.pin,
				},
			})
			defer shutdownServer(t, s)

			ctx := context.Background()
			if tc.ctxLevel >= 0 {
				ctx = WithFidelity(ctx, tc.ctxLevel)
			}
			res, err := s.Extract(ctx, soakDoc("pinned"))
			if err != nil {
				t.Fatalf("Extract: %v", err)
			}
			if !hasDegradation(res, PhaseTriage, tc.fallback) {
				t.Fatalf("degradations = %+v, want %s", res.Degraded, tc.fallback)
			}
			class := strings.TrimPrefix(tc.fallback, "triage-")
			key := obs.Name("serve.triage.docs", obs.L("class", class), obs.L("level", tc.level))
			if got := m.Snapshot().Counters[key]; got != 1 {
				t.Fatalf("%s = %d, want 1", key, got)
			}
		})
	}

	// The off mode must not triage at all, even with an envelope level.
	t.Run("off ignores the envelope", func(t *testing.T) {
		m := NewMetrics()
		s := NewServer(NewPipeline(Config{Task: task}), ServerConfig{Workers: 1, Metrics: m})
		defer shutdownServer(t, s)
		res, err := s.Extract(WithFidelity(context.Background(), 3), soakDoc("off"))
		if err != nil {
			t.Fatalf("Extract: %v", err)
		}
		if res.IsDegraded() {
			t.Fatalf("ladder-off server degraded: %+v", res.Degraded)
		}
		for name := range m.Snapshot().Counters {
			if strings.HasPrefix(name, "serve.triage.") {
				t.Fatalf("ladder-off server recorded triage counter %s", name)
			}
		}
	})
}
