// Real-estate flyer extraction into a key-value store: the paper's framing
// (Section 1, following Doan et al.) is that the extracted key-value pairs
// can be "loaded into a database after schema mapping" and queried. This
// example extracts the Table 4 entities from a batch of broker flyers,
// builds an in-memory listings table keyed by broker, and runs two simple
// "semantic queries" over it.
//
//	go run ./examples/realestate
package main

import (
	"fmt"
	"sort"
	"strings"

	"vs2"
)

// Listing is the schema-mapped record of one flyer.
type Listing struct {
	Doc     string
	Broker  string
	Phone   string
	Email   string
	Address string
	Size    string
	Desc    string
}

func main() {
	batch := vs2.GenerateRealEstateFlyers(16, 777)
	pipeline := vs2.NewPipeline(vs2.Config{Task: vs2.RealEstateTask()})

	// Extract every flyer into the listings table.
	var table []Listing
	for i, labeled := range batch {
		observed := vs2.OCRNoise(labeled, int64(i))
		res := pipeline.Extract(observed.Doc)
		row := Listing{Doc: observed.Doc.ID}
		for _, e := range res.Entities {
			switch e.Entity {
			case vs2.BrokerName:
				row.Broker = e.Text
			case vs2.BrokerPhone:
				row.Phone = e.Text
			case vs2.BrokerEmail:
				row.Email = e.Text
			case vs2.PropertyAddress:
				row.Address = e.Text
			case vs2.PropertySize:
				row.Size = e.Text
			case vs2.PropertyDescription:
				row.Desc = e.Text
			}
		}
		table = append(table, row)
	}

	fmt.Printf("extracted %d listings\n\n", len(table))

	// Query 1: contact sheet — which brokers are listing, with phone numbers.
	fmt.Println("SELECT broker, phone FROM listings ORDER BY broker:")
	rows := append([]Listing(nil), table...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Broker < rows[j].Broker })
	for _, r := range rows {
		if r.Broker == "" {
			continue
		}
		fmt.Printf("  %-28s %s\n", r.Broker, r.Phone)
	}

	// Query 2: listings mentioning square footage.
	fmt.Println()
	fmt.Println("SELECT doc, size, address FROM listings WHERE size LIKE sqft:")
	for _, r := range table {
		if strings.Contains(r.Size, "sqft") {
			fmt.Printf("  %-10s %-22s %s\n", r.Doc, r.Size, r.Address)
		}
	}
}
