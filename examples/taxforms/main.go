// Structured-form extraction: the D1 task. Every form field is a named
// entity whose descriptor is known from the holdout corpus; VS2 locates
// each field's logical block by exact descriptor matching and extracts the
// filled-in value as the remainder of the line. The example runs a scanned
// form through the pipeline and reconciles the extracted values against
// the generator's ground truth.
//
//	go run ./examples/taxforms
package main

import (
	"fmt"

	"vs2"
)

func main() {
	form := vs2.GenerateTaxForms(1, 1988)[0]
	observed := vs2.OCRNoise(form, 3)

	pipeline := vs2.NewPipeline(vs2.Config{Task: vs2.NISTTaxTask()})
	res := pipeline.Extract(observed.Doc)

	extracted := map[string]string{}
	for _, e := range res.Entities {
		extracted[e.Entity] = e.Text
	}

	var hits, misses int
	fmt.Printf("%s (form face %s): %d fields annotated, %d extracted\n\n",
		observed.Doc.ID, observed.Doc.Template, len(observed.Truth.Annotations), len(res.Entities))
	fmt.Printf("%-14s %-28s %s\n", "field", "extracted value", "gold value")
	for _, a := range observed.Truth.Annotations {
		got, ok := extracted[a.Entity]
		mark := "✗"
		if ok && got == a.Text {
			mark = "✓"
			hits++
		} else if ok {
			mark = "≈" // extracted, OCR-corrupted value
			hits++
		} else {
			misses++
		}
		if misses+hits <= 20 { // keep the listing short
			fmt.Printf("%s %-12s %-28q %q\n", mark, a.Entity, got, a.Text)
		}
	}
	fmt.Printf("\nfields recovered: %d/%d\n", hits, hits+misses)
}
