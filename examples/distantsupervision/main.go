// Distant supervision end-to-end: the Section 5.2.1 workflow of the paper.
// The example builds the holdout corpus by "scraping" the simulated
// public-domain listing sites (Table 2), mines maximal frequent subtrees
// from the annotated tuples, and runs the resulting *learned* pattern sets
// against flyers — then compares them with the curated Table 4 sets on the
// same documents. Distant supervision is what frees VS2 from per-template
// extraction rules.
//
//	go run ./examples/distantsupervision
package main

import (
	"fmt"

	"vs2"
)

func main() {
	// Phase 1: construct the holdout corpus and mine patterns.
	learned := vs2.LearnPatterns("real-estate", 7)
	fmt.Printf("mined pattern sets for %d entities:\n", len(learned))
	for _, set := range learned {
		fmt.Printf("  %-22s %d mined subtree pattern(s)\n", set.Entity, len(set.Patterns))
	}

	// Phase 2: extract with the learned sets vs the curated Table 4 sets.
	curated := vs2.RealEstateTask()
	learnedTask := vs2.Task{Name: "real-estate", Sets: learned, Weights: curated.Weights}

	batch := vs2.GenerateRealEstateFlyers(10, 99)
	pLearned := vs2.NewPipeline(vs2.Config{Task: learnedTask})
	pCurated := vs2.NewPipeline(vs2.Config{Task: curated})

	agree, totalL, totalC := 0, 0, 0
	for i, labeled := range batch {
		obs := vs2.OCRNoise(labeled, int64(i))
		el := index(pLearned.Extract(obs.Doc).Entities)
		ec := index(pCurated.Extract(obs.Doc).Entities)
		totalL += len(el)
		totalC += len(ec)
		for entity, text := range el {
			if ec[entity] == text {
				agree++
			}
		}
	}
	fmt.Printf("\nover %d flyers: learned sets extracted %d values, curated %d;\n",
		len(batch), totalL, totalC)
	fmt.Printf("%d extractions agree exactly between the two configurations\n", agree)
	fmt.Println("\n(the curated Table 4 sets are themselves the paper's reported outcome")
	fmt.Println(" of this mining process — agreement shows the pipeline closes the loop)")
}

func index(es []vs2.Extraction) map[string]string {
	out := map[string]string{}
	for _, e := range es {
		out[e.Entity] = e.Text
	}
	return out
}
