// Quickstart: build a small visually rich document by hand, run the VS2
// pipeline on it, and print the logical blocks and extracted entities.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"vs2"
)

func main() {
	d := poster()

	pipeline := vs2.NewPipeline(vs2.Config{Task: vs2.EventPosterTask()})
	result := pipeline.Extract(d)

	fmt.Println("── logical blocks ──")
	for _, b := range result.Blocks {
		fmt.Printf("  [%4.0f,%4.0f %4.0fx%3.0f] %q\n", b.Box.X, b.Box.Y, b.Box.W, b.Box.H, b.Text(d))
	}

	fmt.Println("\n── extracted entities ──")
	for _, e := range result.Entities {
		fmt.Printf("  %-18s %q\n", e.Entity, e.Text)
	}
}

// poster lays out a minimal event poster: a headline, an organizer credit,
// a logistics block and a decoy mention in the fine print that the
// multimodal disambiguation must reject.
func poster() *vs2.Document {
	d := &vs2.Document{
		ID:         "quickstart",
		Width:      400,
		Height:     560,
		Background: vs2.White,
	}
	id := 0
	add := func(x, y, fontH float64, color vs2.RGB, words ...string) {
		cx := x
		for _, w := range words {
			width := float64(len(w)) * fontH * 0.55
			d.Elements = append(d.Elements, vs2.Element{
				ID: id, Kind: vs2.TextElement, Text: w,
				Box:      vs2.Rect{X: cx, Y: y, W: width, H: fontH},
				Color:    color,
				FontSize: fontH, Line: int(y),
			})
			id++
			cx += width + fontH*0.5
		}
	}

	add(40, 40, 32, vs2.RGB{R: 16, G: 24, B: 64}, "Summer", "Jazz", "Night")
	add(40, 100, 15, vs2.RGB{R: 128, B: 32}, "presented", "by", "Riverside", "Jazz", "Society")
	add(40, 230, 15, vs2.Black, "Saturday,", "June", "14,", "7:30", "PM")
	add(40, 262, 12, vs2.Black, "450", "Maple", "Ave,", "Columbus,", "OH", "43210")
	add(40, 360, 11, vs2.Black, "join", "us", "for", "an", "unforgettable", "evening")
	add(40, 376, 11, vs2.Black, "of", "live", "music", "and", "great", "food")
	add(40, 520, 8, vs2.Gray, "flyer", "design", "by", "Maria", "Chen")
	return d
}
