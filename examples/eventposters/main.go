// Event-poster batch extraction: the Example 1.1 scenario of the paper.
// Alice wants {Event Title, Event Organizer, ...} from a pile of collected
// event posters — some photographed with a phone, some saved as PDFs. The
// example generates such a heterogeneous batch, passes each capture
// through the OCR channel its provenance dictates, extracts the Table 3
// entities, and scores the result against the generator's ground truth.
//
//	go run ./examples/eventposters
package main

import (
	"fmt"

	"vs2"
)

func main() {
	const n = 12
	batch := vs2.GenerateEventPosters(n, 2026)
	pipeline := vs2.NewPipeline(vs2.Config{Task: vs2.EventPosterTask()})

	correct, total := 0, 0
	for i, labeled := range batch {
		observed := vs2.OCRNoise(labeled, int64(i))
		res := pipeline.Extract(observed.Doc)

		fmt.Printf("%s (%s capture)\n", observed.Doc.ID, observed.Doc.Capture)
		byEntity := map[string]string{}
		for _, e := range res.Entities {
			byEntity[e.Entity] = e.Text
		}
		for _, entity := range []string{
			vs2.EventTitle, vs2.EventOrganizer, vs2.EventTime, vs2.EventPlace,
		} {
			got := byEntity[entity]
			want := ""
			for _, a := range observed.Truth.ForEntity(entity) {
				want = a.Text
				break
			}
			mark := " "
			if overlap(got, want) {
				mark = "✓"
				correct++
			}
			total++
			fmt.Printf("  %s %-16s got %-38q want %q\n", mark, entity, clip(got), clip(want))
		}
		fmt.Println()
	}
	fmt.Printf("text accuracy over the batch: %d/%d\n", correct, total)
}

func overlap(got, want string) bool {
	if got == "" || want == "" {
		return false
	}
	gotSet := fields(got)
	wantTokens := fields2(want)
	n := 0
	for _, w := range wantTokens {
		if gotSet[w] {
			n++
		}
	}
	return n*2 >= len(wantTokens) // at least half the gold tokens recovered
}

func fields(s string) map[string]bool {
	out := map[string]bool{}
	for _, f := range fields2(s) {
		out[f] = true
	}
	return out
}

func fields2(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' || r == ',' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func clip(s string) string {
	if len(s) > 36 {
		return s[:36] + "…"
	}
	return s
}
