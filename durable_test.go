package vs2

// Tests for the durability layer's binding to the serving layer: the
// write-ahead contract of ExtractBatch(WithDurability), byte-identical
// replay across a journal reopen, and the transient/permanent split from
// the PR 3 retry classifier (permanent outcomes replay verbatim,
// transient failures re-extract).

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"vs2/internal/extract"
	"vs2/internal/faults"
)

// durableServer builds a server over the event-poster task; a non-nil
// failSearch wraps the extractor so every pattern search fails with the
// injected (transient) backend error.
func durableServer(t *testing.T, m *Metrics, failSearch bool) *Server {
	t.Helper()
	task := EventPosterTask()
	cfg := Config{Task: task, Metrics: m}
	if failSearch {
		cfg.Extractor = &faults.Extractor{
			Inner:  extract.New(extract.Options{Weights: task.Weights}),
			Search: faults.Injection{Kind: faults.Error},
		}
	}
	p := NewPipeline(cfg)
	s := NewServer(p, ServerConfig{Workers: 2, QueueWait: -1, Queue: 16, Metrics: m, Retry: fastRetry(1)})
	t.Cleanup(func() { shutdownServer(t, s) })
	return s
}

// TestExtractBatchDurableResume runs a batch durably, reopens the
// journal as a crashed run would, and proves every document replays from
// the journal with its exact line — the pipeline never re-runs.
func TestExtractBatchDurableResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	docs := make([]*Document, 5)
	for i := range docs {
		docs[i] = namedDoc(fmt.Sprintf("durable-%d", i))
	}

	m1 := NewMetrics()
	j1, err := OpenJournal(path, JournalOptions{Metrics: m1})
	if err != nil {
		t.Fatal(err)
	}
	first := durableServer(t, m1, false).ExtractBatch(context.Background(), docs, WithDurability(j1))
	for i, r := range first {
		if r.Err != nil {
			t.Fatalf("doc %d: %v", i, r.Err)
		}
		if r.Replayed {
			t.Fatalf("doc %d replayed on a fresh journal", i)
		}
		if len(r.Line) == 0 {
			t.Fatalf("doc %d: durable batch produced no rendered line", i)
		}
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := NewMetrics()
	j2, err := OpenJournal(path, JournalOptions{Resume: true, Metrics: m2})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if comp, _ := j2.Replayed(); comp != len(docs) {
		t.Fatalf("recovered %d completions, want %d", comp, len(docs))
	}
	// The resumed server's search backend always fails: if replay touched
	// the pipeline at all, every result would carry an error.
	second := durableServer(t, m2, true).ExtractBatch(context.Background(), docs, WithDurability(j2))
	for i, r := range second {
		if !r.Replayed {
			t.Fatalf("doc %d did not replay from the journal", i)
		}
		if r.Err != nil {
			t.Fatalf("doc %d: replay errored: %v", i, r.Err)
		}
		if !bytes.Equal(r.Line, first[i].Line) {
			t.Fatalf("doc %d: replayed line differs:\n  run:    %s\n  replay: %s", i, first[i].Line, r.Line)
		}
	}
}

// TestDurableTransientFailureReextracts: a transiently failed document
// is not journaled as complete, so a resumed run re-runs it — and, with
// the fault gone, succeeds.
func TestDurableTransientFailureReextracts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	d := namedDoc("flaky")

	m1 := NewMetrics()
	j1, err := OpenJournal(path, JournalOptions{Metrics: m1})
	if err != nil {
		t.Fatal(err)
	}
	broken := durableServer(t, m1, true) // every search fails transiently
	out := broken.ExtractBatch(context.Background(), []*Document{d}, WithDurability(j1))
	if out[0].Err == nil || !IsTransient(out[0].Err) {
		t.Fatalf("fault injection produced %v, want a transient error", out[0].Err)
	}
	if _, ok := j1.Completed("flaky"); ok {
		t.Fatal("transient failure was journaled as a completion")
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := NewMetrics()
	j2, err := OpenJournal(path, JournalOptions{Resume: true, Metrics: m2})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	out = durableServer(t, m2, false).ExtractBatch(context.Background(), []*Document{d}, WithDurability(j2))
	if out[0].Replayed {
		t.Fatal("transient failure replayed instead of re-extracting")
	}
	if out[0].Err != nil {
		t.Fatalf("re-extraction failed: %v", out[0].Err)
	}
}

// TestDurablePermanentRejectionReplays: a permanent rejection (invalid
// document) is journaled like a completion, so resume replays the same
// error line without burning pipeline work on a document that can never
// succeed.
func TestDurablePermanentRejectionReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	d := &Document{ID: "hollow", Width: 100, Height: 100} // no elements: permanently invalid

	m1 := NewMetrics()
	j1, err := OpenJournal(path, JournalOptions{Metrics: m1})
	if err != nil {
		t.Fatal(err)
	}
	out := durableServer(t, m1, false).ExtractBatch(context.Background(), []*Document{d}, WithDurability(j1))
	if out[0].Err == nil || IsTransient(out[0].Err) {
		t.Fatalf("empty document produced %v, want a permanent rejection", out[0].Err)
	}
	firstLine := append([]byte(nil), out[0].Line...)
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, JournalOptions{Resume: true, Metrics: NewMetrics()})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	out = durableServer(t, NewMetrics(), false).ExtractBatch(context.Background(), []*Document{d}, WithDurability(j2))
	if !out[0].Replayed {
		t.Fatal("permanent rejection did not replay")
	}
	if !bytes.Equal(out[0].Line, firstLine) {
		t.Fatalf("replayed rejection line differs:\n  run:    %s\n  replay: %s", firstLine, out[0].Line)
	}
}

// TestRenderLineDeterministic: the rendered line of a degraded result
// carries no timestamps — rendering the same outcome twice must be
// byte-identical, the property the resume contract stands on.
func TestRenderLineDeterministic(t *testing.T) {
	r := BatchResult{
		Doc: namedDoc("det"),
		Result: &Result{
			Entities: []Extraction{{Entity: "title", Text: "X"}},
			Degraded: []Degradation{{Phase: PhaseSegment, Fallback: "whitespace", Cause: "boom"}},
		},
	}
	a, b := RenderLine(r), RenderLine(r)
	if !bytes.Equal(a, b) {
		t.Fatalf("RenderLine not deterministic:\n%s\n%s", a, b)
	}
	if !bytes.Contains(a, []byte("segment degraded to whitespace: boom")) {
		t.Fatalf("degradation rendering missing from %s", a)
	}
}
